"""Synthetic guest programs with controlled system-call profiles.

A :class:`SyntheticWorkload` describes a benchmark as compute time plus
a rate of system calls split across six categories, one per relaxation
tier of Table 1 (plus the always-monitored management tier):

========== ===============================  =========================
category    representative calls             exempt from level
========== ===============================  =========================
``base``    getpid, gettimeofday, time       BASE_LEVEL
``file_ro`` pread64, fstat, lseek, futex     NONSOCKET_RO_LEVEL
``futex``   futex wake (process-local)       NONSOCKET_RO_LEVEL
``file_rw`` pwrite64, fdatasync              NONSOCKET_RW_LEVEL
``sock_ro`` recvfrom on a loopback socket    SOCKET_RO_LEVEL
``sock_rw`` sendto on a loopback socket      SOCKET_RW_LEVEL
``mgmt``    open/close, mmap/munmap pairs    never (always monitored)
========== ===============================  =========================

The generated program is fully deterministic: every replica draws the
same schedule from the shared program seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.guest.program import Compute, Program
from repro.kernel import constants as C

CATEGORIES = ("base", "file_ro", "futex", "file_rw", "sock_ro", "sock_rw", "mgmt")

#: Syscalls per op for each category (mgmt ops are call pairs).
CALLS_PER_OP = {
    "base": 1,
    "file_ro": 1,
    "futex": 1,
    "file_rw": 1,
    "sock_ro": 1,
    "sock_rw": 1,
    "mgmt": 2,
}

IO_CHUNK = 512


@dataclass
class CategoryMix:
    """Calls-per-second of native runtime for each category."""

    rates: Dict[str, float] = field(default_factory=dict)

    def rate(self, category: str) -> float:
        return self.rates.get(category, 0.0)

    def total_rate(self) -> float:
        return sum(self.rates.values())

    def __post_init__(self):
        unknown = set(self.rates) - set(CATEGORIES)
        if unknown:
            raise ValueError("unknown syscall categories: %r" % sorted(unknown))


@dataclass
class SyntheticWorkload:
    """A reconstructed benchmark."""

    name: str
    native_ms: float
    mix: CategoryMix
    threads: int = 1
    #: Multiplier on the cost model's per-replica memory pressure,
    #: capturing how cache-sensitive this benchmark is.
    cache_sensitivity: float = 1.0
    seed: int = 1234

    def native_ns(self) -> int:
        return int(self.native_ms * 1_000_000)

    def schedule(self) -> List[str]:
        """The deterministic multiset of ops (shared by all replicas)."""
        duration_s = self.native_ms / 1000.0
        rng = random.Random(self.seed)
        ops: List[str] = []
        for category in CATEGORIES:
            rate = self.mix.rate(category)
            count = int(round(rate * duration_s / CALLS_PER_OP[category]))
            ops.extend([category] * count)
        rng.shuffle(ops)
        return ops


def build_program(workload: SyntheticWorkload) -> Program:
    """Compile a workload description into a runnable guest program."""

    schedule = workload.schedule()
    threads = max(1, workload.threads)
    # Round-robin the schedule across worker threads.
    per_thread: List[List[str]] = [schedule[i::threads] for i in range(threads)]
    total_ns = workload.native_ns()
    needs_socket = any(op.startswith("sock") for op in schedule)
    needs_file = any(op in ("file_ro", "file_rw", "mgmt") for op in schedule)
    sock_ro_bytes = sum(IO_CHUNK for op in schedule if op == "sock_ro")

    def worker_body(ctx, ops, resources):
        libc = ctx.libc
        if not ops:
            # A purely compute-bound thread (e.g. swaptions): no
            # syscalls, just the benchmark's native running time.
            yield Compute(total_ns)
            return
        count = max(1, len(ops))
        gap = max(1, total_ns // count)
        futex_word = yield from libc.malloc(4)
        ctx.mem.write_u32(futex_word, 0)
        for op in ops:
            yield Compute(gap)
            if op == "base":
                choice = ctx.rng.random()
                if choice < 0.4:
                    yield ctx.sys.getpid()
                elif choice < 0.7:
                    ns = yield from libc.clock_gettime()
                    assert ns >= 0
                else:
                    yield ctx.sys.gettid()
            elif op == "file_ro":
                choice = ctx.rng.random()
                if choice < 0.7:
                    offset = ctx.rng.randrange(8) * IO_CHUNK
                    ret, _data = yield from libc.pread(
                        resources["ro_fd"], IO_CHUNK, offset
                    )
                    assert ret >= 0, ret
                else:
                    ret, _st = yield from libc.fstat(resources["ro_fd"])
                    assert ret == 0, ret
            elif op == "futex":
                ret = yield from libc.futex_wake(futex_word, 1)
                assert ret >= 0, ret
            elif op == "file_rw":
                if ctx.rng.random() < 0.9:
                    ret = yield from libc.pwrite(
                        resources["rw_fd"], b"x" * IO_CHUNK, 0
                    )
                    assert ret == IO_CHUNK, ret
                else:
                    ret = yield ctx.sys.fdatasync(resources["rw_fd"])
                    assert ret == 0, ret
            elif op == "sock_ro":
                ret, _data = yield from libc.recv(resources["sock_r"], IO_CHUNK)
                assert ret == IO_CHUNK, ret
            elif op == "sock_rw":
                ret = yield from libc.send(resources["sock_w"], b"y" * IO_CHUNK)
                assert ret == IO_CHUNK, ret
            elif op == "mgmt":
                if ctx.rng.random() < 0.5:
                    fd = yield from libc.open("/data/%s.bin" % workload.name)
                    assert fd >= 0, fd
                    yield from libc.close(fd)
                else:
                    addr = yield ctx.sys.mmap(
                        0,
                        C.PAGE_SIZE,
                        C.PROT_READ | C.PROT_WRITE,
                        C.MAP_PRIVATE | C.MAP_ANONYMOUS,
                        -1,
                        0,
                    )
                    assert addr > 0
                    yield ctx.sys.munmap(addr, C.PAGE_SIZE)

    def main(ctx):
        libc = ctx.libc
        resources = {}
        if needs_file:
            resources["ro_fd"] = yield from libc.open("/data/%s.bin" % workload.name)
            assert resources["ro_fd"] >= 0
            resources["rw_fd"] = yield from libc.open(
                "/tmp/%s.out" % workload.name, C.O_RDWR | C.O_CREAT
            )
            assert resources["rw_fd"] >= 0
        if needs_socket:
            yield from _setup_loopback(ctx, resources, sock_ro_bytes)

        done_word = yield from libc.malloc(4)
        ctx.mem.write_u32(done_word, 0)
        remaining = {"count": threads - 1}

        def spawn_worker(cctx, payload):
            ops_for_thread = payload

            def body():
                yield from worker_body(cctx, ops_for_thread, resources)
                value = cctx.mem.read_u32(done_word) + 1
                cctx.mem.write_u32(done_word, value)
                yield from cctx.libc.futex_wake(done_word, 1)

            return body()

        for tindex in range(1, threads):
            tid = yield ctx.spawn_thread(spawn_worker, per_thread[tindex])
            assert tid > 0

        yield from worker_body(ctx, per_thread[0], resources)

        # Join workers.
        while ctx.mem.read_u32(done_word) < remaining["count"]:
            current = ctx.mem.read_u32(done_word)
            yield from libc.futex_wait(done_word, current)
        return 0

    def _setup_loopback(ctx, resources, prefill_bytes):
        libc = ctx.libc
        port = 17000 + (workload.seed % 1000)
        listener = yield from libc.socket()
        assert listener >= 0
        ret = yield from libc.bind(listener, "0.0.0.0", port)
        assert ret == 0, ret
        ret = yield from libc.listen(listener)
        assert ret == 0
        client = yield from libc.socket()
        ret = yield from libc.connect(client, ctx.process.host_ip, port)
        assert ret == 0, ret
        server_side = yield from libc.accept(listener)
        assert server_side >= 0, server_side
        resources["sock_w"] = client
        resources["sock_r"] = server_side
        # Pre-fill so sock_ro ops never block: the loopback carries all
        # the bytes the schedule will read, ahead of time.
        remaining = prefill_bytes
        while remaining > 0:
            chunk = min(remaining, 65536)
            ret = yield from libc.send(resources["sock_w"], b"z" * chunk)
            assert ret == chunk, ret
            remaining -= chunk

    files = {}
    if needs_file:
        files["/data/%s.bin" % workload.name] = bytes(IO_CHUNK * 16)
    program = Program(workload.name, main, seed=workload.seed, files=files)
    program.cache_sensitivity = workload.cache_sensitivity
    program.workload = workload
    return program
