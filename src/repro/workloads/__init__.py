"""Workloads reconstructing the paper's evaluation suites (§5).

The original evaluation ran PARSEC 2.1, SPLASH-2x, Phoronix and a set of
real servers on a dual Xeon E5-2660. None of those binaries can run on
this simulated substrate, so each benchmark is reconstructed as a guest
program with the *system-call profile* that made the benchmark behave
the way the paper reports: its syscall rate, its category mix across the
Table 1 relaxation levels, its threading, and its compute/IO balance.

Profiles are derived in :mod:`repro.workloads.profiles` from the paper's
own per-benchmark bars (Figures 3 and 4): the drop between consecutive
relaxation levels identifies how much of the benchmark's syscall traffic
belongs to the category that level exempts. The derivation is inverted
against *this simulator's* calibrated per-call costs, so regenerating
the figures exercises the full ReMon stack rather than replaying
constants — see DESIGN.md §5 for the fidelity argument.
"""

from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

__all__ = ["CategoryMix", "SyntheticWorkload", "build_program"]
