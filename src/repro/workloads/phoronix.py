"""Phoronix reconstruction (Figure 4): all five relaxation levels.

The eight benchmarks cover the whole spectrum the figure demonstrates:
CPU-bound encoders that barely notice monitoring, phpbench's burst of
process-local calls (exempt from BASE/NONSOCKET levels), unpack-linux's
filesystem traffic, and the two network benchmarks whose overhead only
falls once socket reads (SOCKET_RO) and writes (SOCKET_RW) run
unmonitored.
"""

from repro.workloads.profiles import (
    PHORONIX_BENCHMARKS,
    PHORONIX_GEOMEAN_TARGETS,
    derive_workload,
    workloads_for,
)

__all__ = [
    "PHORONIX_BENCHMARKS",
    "PHORONIX_GEOMEAN_TARGETS",
    "derive_workload",
    "workloads_for",
]
