"""Server applications reconstructed for the §5.2 evaluation.

Each server the paper measured is modelled with its real concurrency
architecture and per-request system-call pattern:

============ ======== ========== ========= ======================
server        workers  I/O model  response  per-request extras
============ ======== ========== ========= ======================
apache        4        accept     10 KiB    file pread + log write
thttpd        1        poll       4 KiB     file pread
lighttpd      1        epoll      4 KiB     file pread + log write
nginx         4        epoll      4 KiB     file pread
redis         1        epoll      64 B      —
memcached     4        epoll      128 B     —
beanstalkd    1        epoll      128 B     —
============ ======== ========== ========= ======================

All servers speak the same tiny line-oriented protocol the clients in
:mod:`repro.workloads.clients` generate: a fixed-size request line; the
response is a header plus a payload. A request beginning with ``QUIT``
asks the server to shut down.

Shutdown is deliberately data-race-free: no worker ever polls a flag
another thread wrote to memory. The worker that services QUIT closes
the shared listener (accept model) or pokes a never-drained shutdown
pipe registered in every sibling's readiness set (poll/epoll models),
and the main thread joins workers by reading one byte per sibling from
a join pipe. Every loop exit is therefore driven by a system-call
result. That is the discipline the paper demands of MVEE-able
programs — racy flag polls make per-thread syscall counts depend on
scheduling, which desynchronises lockstep replicas (and, in the
distributed fleet, the leader and its followers resume replicated
calls at different offsets, so such races *will* fire).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.program import Compute, Program
from repro.kernel import constants as C

REQUEST_SIZE = 64
HEADER = b"OK 200\n"


@dataclass
class ServerSpec:
    name: str
    port: int
    workers: int = 1
    io_model: str = "epoll"  # epoll | poll | accept
    response_bytes: int = 4096
    file_io: bool = False
    log_writes: bool = False
    service_ns: int = 8_000

    def program(self) -> Program:
        return build_server_program(self)


#: The nine §5.2 configurations (server names match Figure 5's labels).
SERVERS = {
    "apache-ab": ServerSpec(
        "apache-ab", 8100, workers=4, io_model="accept", response_bytes=10240,
        file_io=True, log_writes=True, service_ns=110_000,
    ),
    "thttpd-ab": ServerSpec(
        "thttpd-ab", 8101, workers=1, io_model="poll", response_bytes=4096,
        file_io=True, service_ns=90_000,
    ),
    "lighttpd-ab": ServerSpec(
        "lighttpd-ab", 8102, workers=1, io_model="epoll", response_bytes=4096,
        file_io=True, log_writes=True, service_ns=80_000,
    ),
    "lighttpd-http_load": ServerSpec(
        "lighttpd-http_load", 8103, workers=1, io_model="epoll",
        response_bytes=4096, file_io=True, log_writes=True, service_ns=80_000,
    ),
    "lighttpd-wrk": ServerSpec(
        "lighttpd-wrk", 8104, workers=1, io_model="epoll", response_bytes=4096,
        file_io=True, log_writes=True, service_ns=80_000,
    ),
    "nginx-wrk": ServerSpec(
        "nginx-wrk", 8105, workers=4, io_model="epoll", response_bytes=4096,
        file_io=True, service_ns=60_000,
    ),
    "redis": ServerSpec(
        "redis", 8106, workers=1, io_model="epoll", response_bytes=64,
        service_ns=15_000,
    ),
    "memcached": ServerSpec(
        "memcached", 8107, workers=4, io_model="epoll", response_bytes=128,
        service_ns=15_000,
    ),
    "beanstalkd": ServerSpec(
        "beanstalkd", 8108, workers=1, io_model="epoll", response_bytes=128,
        service_ns=18_000,
    ),
}

EPOLL_IDLE_TIMEOUT_MS = 25


def build_server_program(spec: ServerSpec) -> Program:
    """Compile a server spec into a guest program."""

    def main(ctx):
        libc = ctx.libc
        # Every real network server does this: a peer that hangs up
        # mid-response must not kill the process.
        yield ctx.sys.rt_sigaction(C.SIGPIPE, C.SIG_IGN)
        listener = yield from libc.socket()
        assert listener >= 0, listener
        ret = yield from libc.bind(listener, "0.0.0.0", spec.port)
        assert ret == 0, ret
        ret = yield from libc.listen(listener, 128)
        assert ret == 0, ret
        yield from libc.set_nonblocking(listener)

        # Shutdown pipe: the QUIT worker writes one byte and nobody ever
        # reads it, so the read end stays level-triggered-readable in
        # every sibling's poll/epoll interest set. Join pipe: each
        # sibling writes one byte on exit and main reads exactly
        # ``workers - 1`` of them — both signals travel through syscall
        # results, never through racy cross-thread memory reads.
        sd_r, sd_w = yield from libc.pipe()
        assert sd_r >= 0, sd_r
        join_r, join_w = yield from libc.pipe()
        assert join_r >= 0, join_r
        shared = {
            "listener": listener,
            "sd_r": sd_r,
            "sd_w": sd_w,
            "join_w": join_w,
        }

        def spawn_worker(cctx, payload):
            def body():
                yield from _worker(cctx, spec, payload)
                ret = yield from cctx.libc.write(payload["join_w"], b".")
                assert ret == 1, ret

            return body()

        for _ in range(spec.workers - 1):
            tid = yield ctx.spawn_thread(spawn_worker, shared)
            assert tid > 0, tid

        yield from _worker(ctx, spec, shared)
        for _ in range(spec.workers - 1):
            ret, _ = yield from libc.read(join_r, 1)
            assert ret == 1, ret
        return 0

    files = {}
    if spec.file_io:
        files["/var/www/%s.payload" % spec.name] = bytes(spec.response_bytes)
    return Program(spec.name, main, seed=11, files=files)


def _worker(ctx, spec: ServerSpec, shared):
    if spec.io_model == "accept":
        yield from _accept_worker(ctx, spec, shared)
    elif spec.io_model == "poll":
        yield from _poll_worker(ctx, spec, shared)
    else:
        yield from _epoll_worker(ctx, spec, shared)


def _open_resources(ctx, spec):
    libc = ctx.libc
    # "stop" is this worker's private QUIT latch (each worker owns its
    # resources dict), so reading it back is race-free by construction.
    resources = {"stop": False}
    if spec.file_io:
        fd = yield from libc.open("/var/www/%s.payload" % spec.name)
        assert fd >= 0, fd
        resources["file_fd"] = fd
    if spec.log_writes:
        fd = yield from libc.open(
            "/var/log_%s.txt" % spec.name, C.O_WRONLY | C.O_CREAT | C.O_APPEND
        )
        assert fd >= 0, fd
        resources["log_fd"] = fd
    return resources


def _handle_request(ctx, spec, resources, conn, request: bytes):
    """Service one request; returns False when it was QUIT."""
    libc = ctx.libc
    if request.startswith(b"QUIT"):
        resources["stop"] = True
        return False
    yield Compute(spec.service_ns)
    if spec.file_io:
        ret, _data = yield from libc.pread(
            resources["file_fd"], min(spec.response_bytes, 4096), 0
        )
        assert ret >= 0, ret
    body = HEADER + b"x" * spec.response_bytes
    sent = yield from libc.send(conn, body)
    if spec.log_writes and sent > 0:
        yield from libc.write(resources["log_fd"], b"GET /payload 200\n")
    return sent > 0


def _accept_worker(ctx, spec, shared):
    """Blocking thread-per-connection model (apache prefork style).

    The QUIT worker closes the shared listener — a monitored, globally
    ordered call — and every sibling exits when its next accept()
    reports EBADF, so shutdown never reads another thread's memory.
    """
    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    listener = shared["listener"]
    while True:
        conn = yield from libc.accept(listener)
        if conn == -11:  # EAGAIN: racing with other workers
            yield from libc.nanosleep(200_000)
            continue
        if conn < 0:  # EBADF: a sibling saw QUIT and closed the listener
            break
        keep_going = True
        while keep_going:
            ret, request = yield from libc.recv(conn, REQUEST_SIZE)
            if ret <= 0:
                break
            keep_going = yield from _handle_request(
                ctx, spec, resources, conn, request
            )
        yield from libc.close(conn)
        if resources["stop"]:
            yield from libc.close(listener)
            break


def _poll_worker(ctx, spec, shared):
    """poll(2)-based single-threaded loop (thttpd style)."""
    import struct

    from repro.kernel.structs import POLLFD_SIZE, pack_pollfd, unpack_pollfd

    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    listener = shared["listener"]
    shutdown_fd = shared["sd_r"]
    conns = []
    MAXFDS = 64
    fds_buf = yield from libc.malloc(MAXFDS * POLLFD_SIZE)
    running = True
    while running:
        watch = [listener, shutdown_fd] + conns
        for index, fd in enumerate(watch):
            ctx.mem.write(
                fds_buf + index * POLLFD_SIZE, pack_pollfd(fd, C.POLLIN, 0)
            )
        ready = yield ctx.sys.poll(fds_buf, len(watch), EPOLL_IDLE_TIMEOUT_MS)
        if ready <= 0:
            continue
        for index, fd in enumerate(watch):
            raw = ctx.mem.read(fds_buf + index * POLLFD_SIZE, POLLFD_SIZE)
            _fd, _ev, revents = unpack_pollfd(raw)
            if not revents:
                continue
            if fd == shutdown_fd:
                # A sibling saw QUIT and poked the shutdown pipe; the
                # byte is never drained, so the event is level-triggered
                # and every worker's poll set reports it.
                running = False
                continue
            if fd == listener:
                conn = yield from libc.accept(listener)
                if conn >= 0:
                    conns.append(conn)
                continue
            ret, request = yield from libc.recv(fd, REQUEST_SIZE)
            if ret <= 0:
                yield from libc.close(fd)
                conns.remove(fd)
                continue
            alive = yield from _handle_request(ctx, spec, resources, fd, request)
            if not alive:
                yield from libc.close(fd)
                conns.remove(fd)
                if resources["stop"]:
                    yield from libc.write(shared["sd_w"], b"x")
                    running = False


def _epoll_worker(ctx, spec, shared):
    """epoll-based loop (lighttpd/nginx/redis/memcached/beanstalkd)."""
    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    listener = shared["listener"]
    epfd = yield from libc.epoll_create()
    assert epfd >= 0, epfd
    # Real servers store a connection-object pointer in epoll data; we
    # mimic that by tagging descriptors with a per-replica "pointer"
    # derived from the heap — exercising the shadow map (§3.9).
    listener_tag = ctx.process.space.brk_base + listener
    ret = yield from libc.epoll_ctl(
        epfd, C.EPOLL_CTL_ADD, listener, C.EPOLLIN, data=listener_tag
    )
    assert ret == 0, ret
    shutdown_tag = ctx.process.space.brk_base + 0x2000 + shared["sd_r"]
    ret = yield from libc.epoll_ctl(
        epfd, C.EPOLL_CTL_ADD, shared["sd_r"], C.EPOLLIN, data=shutdown_tag
    )
    assert ret == 0, ret
    tag_to_fd = {listener_tag: listener}
    running = True
    while running:
        count, events = yield from libc.epoll_wait(
            epfd, maxevents=16, timeout_ms=EPOLL_IDLE_TIMEOUT_MS
        )
        if count < 0:
            break
        for _revents, tag in events:
            if tag == shutdown_tag:
                # A sibling saw QUIT and poked the shutdown pipe; the
                # byte is never drained, so the event is level-triggered
                # and every worker's epoll reports it.
                running = False
                continue
            fd = tag_to_fd.get(tag)
            if fd is None:
                continue
            if fd == listener:
                conn = yield from libc.accept(listener)
                if conn < 0:
                    continue
                yield from libc.set_nonblocking(conn)
                conn_tag = ctx.process.space.brk_base + 0x1000 + conn
                tag_to_fd[conn_tag] = conn
                ret = yield from libc.epoll_ctl(
                    epfd, C.EPOLL_CTL_ADD, conn, C.EPOLLIN, data=conn_tag
                )
                assert ret == 0, ret
                continue
            ret, request = yield from libc.recv(fd, REQUEST_SIZE)
            if ret == -11:  # EAGAIN
                continue
            if ret <= 0:
                yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, fd)
                yield from libc.close(fd)
                tag_to_fd.pop(
                    next((t for t, f in tag_to_fd.items() if f == fd), None), None
                )
                continue
            alive = yield from _handle_request(ctx, spec, resources, fd, request)
            if not alive:
                yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, fd)
                yield from libc.close(fd)
                tag_to_fd.pop(
                    next((t for t, f in tag_to_fd.items() if f == fd), None), None
                )
                if resources["stop"]:
                    yield from libc.write(shared["sd_w"], b"x")
                    running = False
