"""Server applications reconstructed for the §5.2 evaluation.

Each server the paper measured is modelled with its real concurrency
architecture and per-request system-call pattern:

============ ======== ========== ========= ======================
server        workers  I/O model  response  per-request extras
============ ======== ========== ========= ======================
apache        4        accept     10 KiB    file pread + log write
thttpd        1        poll       4 KiB     file pread
lighttpd      1        epoll      4 KiB     file pread + log write
nginx         4        epoll      4 KiB     file pread
redis         1        epoll      64 B      —
memcached     4        epoll      128 B     —
beanstalkd    1        epoll      128 B     —
============ ======== ========== ========= ======================

All servers speak the same tiny line-oriented protocol the clients in
:mod:`repro.workloads.clients` generate: a fixed-size request line; the
response is a header plus a payload. A request beginning with ``QUIT``
asks the server to shut down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.program import Compute, Program
from repro.kernel import constants as C

REQUEST_SIZE = 64
HEADER = b"OK 200\n"


@dataclass
class ServerSpec:
    name: str
    port: int
    workers: int = 1
    io_model: str = "epoll"  # epoll | poll | accept
    response_bytes: int = 4096
    file_io: bool = False
    log_writes: bool = False
    service_ns: int = 8_000

    def program(self) -> Program:
        return build_server_program(self)


#: The nine §5.2 configurations (server names match Figure 5's labels).
SERVERS = {
    "apache-ab": ServerSpec(
        "apache-ab", 8100, workers=4, io_model="accept", response_bytes=10240,
        file_io=True, log_writes=True, service_ns=110_000,
    ),
    "thttpd-ab": ServerSpec(
        "thttpd-ab", 8101, workers=1, io_model="poll", response_bytes=4096,
        file_io=True, service_ns=90_000,
    ),
    "lighttpd-ab": ServerSpec(
        "lighttpd-ab", 8102, workers=1, io_model="epoll", response_bytes=4096,
        file_io=True, log_writes=True, service_ns=80_000,
    ),
    "lighttpd-http_load": ServerSpec(
        "lighttpd-http_load", 8103, workers=1, io_model="epoll",
        response_bytes=4096, file_io=True, log_writes=True, service_ns=80_000,
    ),
    "lighttpd-wrk": ServerSpec(
        "lighttpd-wrk", 8104, workers=1, io_model="epoll", response_bytes=4096,
        file_io=True, log_writes=True, service_ns=80_000,
    ),
    "nginx-wrk": ServerSpec(
        "nginx-wrk", 8105, workers=4, io_model="epoll", response_bytes=4096,
        file_io=True, service_ns=60_000,
    ),
    "redis": ServerSpec(
        "redis", 8106, workers=1, io_model="epoll", response_bytes=64,
        service_ns=15_000,
    ),
    "memcached": ServerSpec(
        "memcached", 8107, workers=4, io_model="epoll", response_bytes=128,
        service_ns=15_000,
    ),
    "beanstalkd": ServerSpec(
        "beanstalkd", 8108, workers=1, io_model="epoll", response_bytes=128,
        service_ns=18_000,
    ),
}

EPOLL_IDLE_TIMEOUT_MS = 25


def build_server_program(spec: ServerSpec) -> Program:
    """Compile a server spec into a guest program."""

    def main(ctx):
        libc = ctx.libc
        # Every real network server does this: a peer that hangs up
        # mid-response must not kill the process.
        yield ctx.sys.rt_sigaction(C.SIGPIPE, C.SIG_IGN)
        listener = yield from libc.socket()
        assert listener >= 0, listener
        ret = yield from libc.bind(listener, "0.0.0.0", spec.port)
        assert ret == 0, ret
        ret = yield from libc.listen(listener, 128)
        assert ret == 0, ret
        yield from libc.set_nonblocking(listener)

        stop_word = yield from libc.malloc(4)
        ctx.mem.write_u32(stop_word, 0)
        done_word = yield from libc.malloc(4)
        ctx.mem.write_u32(done_word, 0)
        shared = {"listener": listener, "stop": stop_word, "done": done_word}

        def spawn_worker(cctx, payload):
            def body():
                yield from _worker(cctx, spec, payload)
                value = cctx.mem.read_u32(payload["done"]) + 1
                cctx.mem.write_u32(payload["done"], value)
                yield from cctx.libc.futex_wake(payload["done"], 1)

            return body()

        for _ in range(spec.workers - 1):
            tid = yield ctx.spawn_thread(spawn_worker, shared)
            assert tid > 0, tid

        yield from _worker(ctx, spec, shared)
        while ctx.mem.read_u32(done_word) < spec.workers - 1:
            current = ctx.mem.read_u32(done_word)
            yield from libc.futex_wait(done_word, current)
        return 0

    files = {}
    if spec.file_io:
        files["/var/www/%s.payload" % spec.name] = bytes(spec.response_bytes)
    return Program(spec.name, main, seed=11, files=files)


def _worker(ctx, spec: ServerSpec, shared):
    if spec.io_model == "accept":
        yield from _accept_worker(ctx, spec, shared)
    elif spec.io_model == "poll":
        yield from _poll_worker(ctx, spec, shared)
    else:
        yield from _epoll_worker(ctx, spec, shared)


def _open_resources(ctx, spec):
    libc = ctx.libc
    resources = {}
    if spec.file_io:
        fd = yield from libc.open("/var/www/%s.payload" % spec.name)
        assert fd >= 0, fd
        resources["file_fd"] = fd
    if spec.log_writes:
        fd = yield from libc.open(
            "/var/log_%s.txt" % spec.name, C.O_WRONLY | C.O_CREAT | C.O_APPEND
        )
        assert fd >= 0, fd
        resources["log_fd"] = fd
    return resources


def _handle_request(ctx, spec, resources, conn, request: bytes):
    """Service one request; returns False when it was QUIT."""
    libc = ctx.libc
    if request.startswith(b"QUIT"):
        ctx.mem.write_u32(resources["stop"], 1)
        return False
    yield Compute(spec.service_ns)
    if spec.file_io:
        ret, _data = yield from libc.pread(
            resources["file_fd"], min(spec.response_bytes, 4096), 0
        )
        assert ret >= 0, ret
    body = HEADER + b"x" * spec.response_bytes
    sent = yield from libc.send(conn, body)
    if spec.log_writes and sent > 0:
        yield from libc.write(resources["log_fd"], b"GET /payload 200\n")
    return sent > 0


def _accept_worker(ctx, spec, shared):
    """Blocking thread-per-connection model (apache prefork style)."""
    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    resources["stop"] = shared["stop"]
    listener = shared["listener"]
    while not ctx.mem.read_u32(shared["stop"]):
        conn = yield from libc.accept(listener)
        if conn == -11:  # EAGAIN: racing with other workers
            yield from libc.nanosleep(200_000)
            continue
        if conn < 0:
            break
        keep_going = True
        while keep_going:
            ret, request = yield from libc.recv(conn, REQUEST_SIZE)
            if ret <= 0:
                break
            keep_going = yield from _handle_request(
                ctx, spec, resources, conn, request
            )
        yield from libc.close(conn)


def _poll_worker(ctx, spec, shared):
    """poll(2)-based single-threaded loop (thttpd style)."""
    import struct

    from repro.kernel.structs import POLLFD_SIZE, pack_pollfd, unpack_pollfd

    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    resources["stop"] = shared["stop"]
    listener = shared["listener"]
    conns = []
    MAXFDS = 64
    fds_buf = yield from libc.malloc(MAXFDS * POLLFD_SIZE)
    while not ctx.mem.read_u32(shared["stop"]):
        watch = [listener] + conns
        for index, fd in enumerate(watch):
            ctx.mem.write(
                fds_buf + index * POLLFD_SIZE, pack_pollfd(fd, C.POLLIN, 0)
            )
        ready = yield ctx.sys.poll(fds_buf, len(watch), EPOLL_IDLE_TIMEOUT_MS)
        if ready <= 0:
            continue
        for index, fd in enumerate(watch):
            raw = ctx.mem.read(fds_buf + index * POLLFD_SIZE, POLLFD_SIZE)
            _fd, _ev, revents = unpack_pollfd(raw)
            if not revents:
                continue
            if fd == listener:
                conn = yield from libc.accept(listener)
                if conn >= 0:
                    conns.append(conn)
                continue
            ret, request = yield from libc.recv(fd, REQUEST_SIZE)
            if ret <= 0:
                yield from libc.close(fd)
                conns.remove(fd)
                continue
            alive = yield from _handle_request(ctx, spec, resources, fd, request)
            if not alive:
                yield from libc.close(fd)
                conns.remove(fd)


def _epoll_worker(ctx, spec, shared):
    """epoll-based loop (lighttpd/nginx/redis/memcached/beanstalkd)."""
    libc = ctx.libc
    resources = yield from _open_resources(ctx, spec)
    resources["stop"] = shared["stop"]
    listener = shared["listener"]
    epfd = yield from libc.epoll_create()
    assert epfd >= 0, epfd
    # Real servers store a connection-object pointer in epoll data; we
    # mimic that by tagging descriptors with a per-replica "pointer"
    # derived from the heap — exercising the shadow map (§3.9).
    listener_tag = ctx.process.space.brk_base + listener
    ret = yield from libc.epoll_ctl(
        epfd, C.EPOLL_CTL_ADD, listener, C.EPOLLIN, data=listener_tag
    )
    assert ret == 0, ret
    tag_to_fd = {listener_tag: listener}
    while not ctx.mem.read_u32(shared["stop"]):
        count, events = yield from libc.epoll_wait(
            epfd, maxevents=16, timeout_ms=EPOLL_IDLE_TIMEOUT_MS
        )
        if count < 0:
            break
        for _revents, tag in events:
            fd = tag_to_fd.get(tag)
            if fd is None:
                continue
            if fd == listener:
                conn = yield from libc.accept(listener)
                if conn < 0:
                    continue
                yield from libc.set_nonblocking(conn)
                conn_tag = ctx.process.space.brk_base + 0x1000 + conn
                tag_to_fd[conn_tag] = conn
                ret = yield from libc.epoll_ctl(
                    epfd, C.EPOLL_CTL_ADD, conn, C.EPOLLIN, data=conn_tag
                )
                assert ret == 0, ret
                continue
            ret, request = yield from libc.recv(fd, REQUEST_SIZE)
            if ret == -11:  # EAGAIN
                continue
            if ret <= 0:
                yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, fd)
                yield from libc.close(fd)
                tag_to_fd.pop(
                    next((t for t, f in tag_to_fd.items() if f == fd), None), None
                )
                continue
            alive = yield from _handle_request(ctx, spec, resources, fd, request)
            if not alive:
                yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, fd)
                yield from libc.close(fd)
                tag_to_fd.pop(
                    next((t for t, f in tag_to_fd.items() if f == fd), None), None
                )
