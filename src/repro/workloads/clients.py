"""Benchmark clients: ab, wrk and http_load analogues (§5.2).

Clients run as ordinary (un-replicated) simulated processes on a
separate host, so every request crosses the simulated network and pays
its latency — the variable the paper's three scenarios (0.1 ms LAN,
2 ms realistic, 5 ms comparison) sweep.

The three tools differ the way the real ones do:

* **ab** — fixed concurrency, a new connection per request
  (``keepalive=False`` is ab's default);
* **wrk** — fixed concurrency with keep-alive connections;
* **http_load** — like ab but rate-paced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.guest.program import Program
from repro.workloads.servers import REQUEST_SIZE


@dataclass
class ClientSpec:
    tool: str = "ab"  # ab | wrk | http_load
    concurrency: int = 8
    total_requests: int = 120
    #: pacing gap between requests per connection (http_load style)
    pace_ns: int = 0

    @property
    def keepalive(self) -> bool:
        return self.tool == "wrk"


CLIENT_HOST = "10.0.0.99"


class ClientResult:
    """Filled in by the client program as it runs."""

    def __init__(self):
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None
        self.completed = 0
        self.errors = 0
        self.bytes_received = 0

    @property
    def duration_ns(self) -> int:
        if self.started_ns is None or self.finished_ns is None:
            return 0
        return self.finished_ns - self.started_ns

    def throughput_rps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)


def build_client_program(
    server_ip: str,
    port: int,
    spec: ClientSpec,
    result: ClientResult,
    name: str = "client",
) -> Program:
    """A load generator driving ``spec.total_requests`` requests."""

    request_line = b"GET /payload".ljust(REQUEST_SIZE, b".")

    def do_request(ctx, fd):
        libc = ctx.libc
        sent = yield from libc.send(fd, request_line)
        if sent != REQUEST_SIZE:
            return False
        ret, header = yield from libc.recv(fd, 4096)
        if ret <= 0:
            return False
        result.bytes_received += ret
        return True

    def take(counter) -> bool:
        if counter["issued"] >= spec.total_requests:
            return False
        counter["issued"] += 1
        return True

    def connection_worker(ctx, counter):
        libc = ctx.libc
        if spec.keepalive:
            if not take(counter):
                return
            fd = yield from libc.socket()
            ret = yield from libc.connect(fd, server_ip, port)
            if fd < 0 or ret != 0:
                result.errors += 1
                return
            while True:
                ok = yield from do_request(ctx, fd)
                if ok:
                    result.completed += 1
                else:
                    result.errors += 1
                    break
                if not take(counter):
                    break
                if spec.pace_ns:
                    yield from libc.nanosleep(spec.pace_ns)
            yield from libc.close(fd)
            return
        while take(counter):
            fd = yield from libc.socket()
            if fd < 0:
                result.errors += 1
                continue
            ret = yield from libc.connect(fd, server_ip, port)
            if ret != 0:
                result.errors += 1
                yield from libc.close(fd)
                continue
            ok = yield from do_request(ctx, fd)
            if ok:
                result.completed += 1
            else:
                result.errors += 1
            yield from libc.close(fd)
            if spec.pace_ns:
                yield from libc.nanosleep(spec.pace_ns)

    def main(ctx):
        libc = ctx.libc
        # Give the server time to bind its port.
        yield from libc.nanosleep(2_000_000)
        result.started_ns = ctx.kernel.sim.now
        counter = {"issued": 0}
        done_word = yield from libc.malloc(4)
        ctx.mem.write_u32(done_word, 0)
        workers = max(1, spec.concurrency)

        def spawn(cctx, payload):
            def body():
                yield from connection_worker(cctx, payload)
                value = cctx.mem.read_u32(done_word) + 1
                cctx.mem.write_u32(done_word, value)
                yield from cctx.libc.futex_wake(done_word, 1)

            return body()

        for _ in range(workers - 1):
            yield ctx.spawn_thread(spawn, counter)
        yield from connection_worker(ctx, counter)
        while ctx.mem.read_u32(done_word) < workers - 1:
            current = ctx.mem.read_u32(done_word)
            yield from libc.futex_wait(done_word, current)
        result.finished_ns = ctx.kernel.sim.now
        # Ask the server to shut down.
        fd = yield from libc.socket()
        ret = yield from libc.connect(fd, server_ip, port)
        if ret == 0:
            yield from libc.send(fd, b"QUIT".ljust(REQUEST_SIZE, b"."))
            yield from libc.close(fd)
        return 0

    return Program(name, main, seed=23)


def run_server_benchmark(
    kernel,
    server_program: Program,
    spec: ClientSpec,
    port: int,
    server_runner,
) -> ClientResult:
    """Drive one client/server pair to completion.

    ``server_runner(kernel, server_program)`` must start the server
    (natively, under ReMon, or under VARAN) without running the
    simulation; this function then starts the client and runs the world.
    Returns the populated :class:`ClientResult`.
    """
    from repro.guest import GuestRuntime

    result = ClientResult()
    handle = server_runner(kernel, server_program)
    client_process = kernel.create_process("client", host_ip=CLIENT_HOST)
    client = build_client_program("10.0.0.1", port, spec, result)
    GuestRuntime(kernel, client_process, client).start()
    kernel.sim.run(max_steps=400_000_000)
    del handle
    return result
