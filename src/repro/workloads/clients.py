"""Benchmark clients: ab, wrk and http_load analogues (§5.2).

Clients run as ordinary (un-replicated) simulated processes on a
separate host, so every request crosses the simulated network and pays
its latency — the variable the paper's three scenarios (0.1 ms LAN,
2 ms realistic, 5 ms comparison) sweep.

The three tools differ the way the real ones do:

* **ab** — fixed concurrency, a new connection per request
  (``keepalive=False`` is ab's default);
* **wrk** — fixed concurrency with keep-alive connections;
* **http_load** — like ab but rate-paced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.guest.program import Program
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.obs.metrics import Histogram
from repro.workloads.servers import HEADER, REQUEST_SIZE


@dataclass
class ClientSpec:
    tool: str = "ab"  # ab | wrk | http_load
    concurrency: int = 8
    total_requests: int = 120
    #: pacing gap between requests per connection (http_load style)
    pace_ns: int = 0

    @property
    def keepalive(self) -> bool:
        return self.tool == "wrk"


CLIENT_HOST = "10.0.0.99"


class ClientResult:
    """Filled in by the client program as it runs."""

    def __init__(self):
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None
        #: Virtual time of the last completed request; the duration
        #: fallback when a run ends before the program stamps
        #: ``finished_ns`` (throughput then still uses virtual time
        #: actually spent serving, never wall-clock or zero).
        self.last_completed_ns: Optional[int] = None
        self.completed = 0
        self.errors = 0
        #: Connections shed by the server: RST at connect time (reject
        #: policy) vs. connect timeout (silent-drop policy).
        self.refused = 0
        self.dropped = 0
        self.bytes_received = 0
        #: Per-request latency (send -> full response), virtual ns.
        self.latency = Histogram("client_req_latency_ns")

    @property
    def duration_ns(self) -> int:
        if self.started_ns is None:
            return 0
        end = self.finished_ns
        if end is None:
            end = self.last_completed_ns
        if end is None:
            return 0
        return end - self.started_ns

    def throughput_rps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)

    def latency_percentile(self, p: float) -> int:
        value = self.latency.percentile(p)
        return value if value is not None else 0

    def stats(self) -> dict:
        """Summary for RunResult.stats: counts plus the latency tail."""
        return {
            "completed": self.completed,
            "errors": self.errors,
            "refused": self.refused,
            "dropped": self.dropped,
            "bytes_received": self.bytes_received,
            "duration_ns": self.duration_ns,
            "throughput_rps": round(self.throughput_rps(), 3),
            "latency_p50_ns": self.latency_percentile(50),
            "latency_p99_ns": self.latency_percentile(99),
        }


def build_client_program(
    server_ip: str,
    port: int,
    spec: ClientSpec,
    result: ClientResult,
    name: str = "client",
) -> Program:
    """A load generator driving ``spec.total_requests`` requests."""

    request_line = b"GET /payload".ljust(REQUEST_SIZE, b".")

    def do_request(ctx, fd):
        libc = ctx.libc
        start = ctx.kernel.sim.now
        sent = yield from libc.send(fd, request_line)
        if sent != REQUEST_SIZE:
            return False
        ret, header = yield from libc.recv(fd, 4096)
        if ret <= 0:
            return False
        result.bytes_received += ret
        now = ctx.kernel.sim.now
        result.latency.observe(now - start)
        result.last_completed_ns = now
        return True

    def take(counter) -> bool:
        if counter["issued"] >= spec.total_requests:
            return False
        counter["issued"] += 1
        return True

    def connection_worker(ctx, counter):
        libc = ctx.libc
        if spec.keepalive:
            if not take(counter):
                return
            fd = yield from libc.socket()
            ret = yield from libc.connect(fd, server_ip, port)
            if fd < 0 or ret != 0:
                result.errors += 1
                return
            while True:
                ok = yield from do_request(ctx, fd)
                if ok:
                    result.completed += 1
                else:
                    result.errors += 1
                    break
                if not take(counter):
                    break
                if spec.pace_ns:
                    yield from libc.nanosleep(spec.pace_ns)
            yield from libc.close(fd)
            return
        while take(counter):
            fd = yield from libc.socket()
            if fd < 0:
                result.errors += 1
                continue
            ret = yield from libc.connect(fd, server_ip, port)
            if ret != 0:
                result.errors += 1
                yield from libc.close(fd)
                continue
            ok = yield from do_request(ctx, fd)
            if ok:
                result.completed += 1
            else:
                result.errors += 1
            yield from libc.close(fd)
            if spec.pace_ns:
                yield from libc.nanosleep(spec.pace_ns)

    def main(ctx):
        libc = ctx.libc
        # Give the server time to bind its port.
        yield from libc.nanosleep(2_000_000)
        result.started_ns = ctx.kernel.sim.now
        counter = {"issued": 0}
        done_word = yield from libc.malloc(4)
        ctx.mem.write_u32(done_word, 0)
        workers = max(1, spec.concurrency)

        def spawn(cctx, payload):
            def body():
                yield from connection_worker(cctx, payload)
                value = cctx.mem.read_u32(done_word) + 1
                cctx.mem.write_u32(done_word, value)
                yield from cctx.libc.futex_wake(done_word, 1)

            return body()

        for _ in range(workers - 1):
            yield ctx.spawn_thread(spawn, counter)
        yield from connection_worker(ctx, counter)
        while ctx.mem.read_u32(done_word) < workers - 1:
            current = ctx.mem.read_u32(done_word)
            yield from libc.futex_wait(done_word, current)
        result.finished_ns = ctx.kernel.sim.now
        # Ask the server to shut down.
        fd = yield from libc.socket()
        ret = yield from libc.connect(fd, server_ip, port)
        if ret == 0:
            yield from libc.send(fd, b"QUIT".ljust(REQUEST_SIZE, b"."))
            yield from libc.close(fd)
        return 0

    return Program(name, main, seed=23)


@dataclass
class MuxClientSpec:
    """A connection-multiplexing load generator (repro.fleet).

    One client process drives many concurrent keepalive connections
    through nonblocking connects and sharded epoll event loops, making
    10k+ connections per run tractable: the simulated epoll is an
    O(interest-set) scan per wakeup, so connections are split across
    worker threads each owning at most ``shard_size`` descriptors.
    """

    connections: int = 256
    requests_per_conn: int = 1
    #: Max connections per epoll/worker thread.
    shard_size: int = 64
    #: Aggregate gap between connection openings: the offered SYN rate
    #: is ``1e9 / connect_pace_ns`` per second regardless of how many
    #: shards the connections split into (each shard opens every
    #: ``pace * shards`` ns, staggered by ``pace * index``).
    connect_pace_ns: int = 20_000
    #: Think time between keepalive requests on one connection.
    request_pace_ns: int = 0
    #: Expected response body size (HEADER is added automatically).
    response_bytes: int = 64
    #: Host-side hook run before the shutdown connection (the fleet
    #: runner disarms admission control here so QUIT always lands).
    drain_hook: Optional[Callable[[], None]] = field(default=None, repr=False)

    @property
    def expected_reply(self) -> int:
        return len(HEADER) + self.response_bytes


def build_mux_client_program(
    server_ip: str,
    port: int,
    spec: MuxClientSpec,
    result: ClientResult,
    name: str = "mux-client",
) -> Program:
    request_line = b"GET /payload".ljust(REQUEST_SIZE, b".")
    expected = spec.expected_reply
    shard_count = max(
        1, -(-spec.connections // spec.shard_size)  # ceil division
    )

    def classify_connect_failure(err):
        if err == E.ETIMEDOUT:
            result.dropped += 1
        else:
            result.refused += 1

    def close_conn(libc, epfd, fd, state):
        yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, fd)
        yield from libc.close(fd)
        state.pop(fd, None)

    def send_request(ctx, fd, st):
        sent = yield from ctx.libc.send(fd, request_line)
        if sent != REQUEST_SIZE:
            return False
        st["sent_at"] = ctx.kernel.sim.now
        st["got"] = 0
        return True

    def shard_worker(ctx, shard_conns):
        libc = ctx.libc
        epfd = yield from libc.epoll_create()
        state = {}
        to_open = shard_conns
        while to_open or state:
            if to_open:
                to_open -= 1
                fd = yield from libc.socket(nonblocking=True)
                if fd < 0:
                    result.errors += 1
                else:
                    ret = yield from libc.connect(fd, server_ip, port)
                    if ret not in (0, -E.EINPROGRESS):
                        result.errors += 1
                        yield from libc.close(fd)
                    else:
                        yield from libc.epoll_ctl(
                            epfd, C.EPOLL_CTL_ADD, fd,
                            C.POLLIN | C.POLLOUT, data=fd,
                        )
                        state[fd] = {"phase": "connecting", "got": 0, "done": 0,
                                     "sent_at": 0}
                if spec.connect_pace_ns:
                    yield from libc.nanosleep(
                        spec.connect_pace_ns * shard_count
                    )
            if not state:
                continue
            # Poll without blocking while still opening connections (the
            # pace sleep above is the clock); block briefly once all are
            # in flight so shed connections' timeouts can fire.
            timeout_ms = 0 if to_open else 20
            count, events = yield from libc.epoll_wait(
                epfd, maxevents=spec.shard_size, timeout_ms=timeout_ms
            )
            if count <= 0:
                continue
            for revents, data in events:
                fd = data
                st = state.get(fd)
                if st is None:
                    continue
                if st["phase"] == "connecting":
                    if revents & (C.POLLERR | C.POLLHUP):
                        err = yield from libc.getsockopt(fd)
                        classify_connect_failure(err)
                        yield from close_conn(libc, epfd, fd, state)
                        continue
                    if revents & C.POLLOUT:
                        st["phase"] = "active"
                        ok = yield from send_request(ctx, fd, st)
                        if not ok:
                            result.errors += 1
                            yield from close_conn(libc, epfd, fd, state)
                            continue
                        # Connected and request in flight: only POLLIN
                        # matters now (a connected socket is always
                        # writable and would spin the event loop).
                        yield from libc.epoll_ctl(
                            epfd, C.EPOLL_CTL_MOD, fd, C.POLLIN, data=fd
                        )
                    continue
                if revents & (C.POLLERR | C.POLLHUP) and not (revents & C.POLLIN):
                    result.errors += 1
                    yield from close_conn(libc, epfd, fd, state)
                    continue
                if not revents & C.POLLIN:
                    continue
                ret, data_bytes = yield from libc.recv(fd, 4096)
                if ret == -E.EAGAIN:
                    continue
                if ret <= 0:
                    result.errors += 1
                    yield from close_conn(libc, epfd, fd, state)
                    continue
                result.bytes_received += ret
                st["got"] += ret
                if st["got"] < expected:
                    continue
                now = ctx.kernel.sim.now
                result.completed += 1
                result.latency.observe(now - st["sent_at"])
                result.last_completed_ns = now
                st["done"] += 1
                if st["done"] >= spec.requests_per_conn:
                    yield from close_conn(libc, epfd, fd, state)
                    continue
                if spec.request_pace_ns:
                    yield from libc.nanosleep(spec.request_pace_ns)
                ok = yield from send_request(ctx, fd, st)
                if not ok:
                    result.errors += 1
                    yield from close_conn(libc, epfd, fd, state)
        yield from libc.close(epfd)

    def main(ctx):
        libc = ctx.libc
        # Give the server time to bind its port.
        yield from libc.nanosleep(2_000_000)
        result.started_ns = ctx.kernel.sim.now
        done_word = yield from libc.malloc(4)
        ctx.mem.write_u32(done_word, 0)
        base = spec.connections // shard_count
        extra = spec.connections % shard_count
        sizes = [base + (1 if i < extra else 0) for i in range(shard_count)]
        # Stagger shard start by one aggregate pace slot each so SYNs
        # from different shards interleave into one evenly-spaced
        # stream instead of arriving in lockstep bursts.
        stagger = spec.connect_pace_ns if shard_count > 1 else 0

        def spawn(cctx, payload):
            index, conns = payload

            def body():
                if stagger and index:
                    yield from cctx.libc.nanosleep(stagger * index)
                yield from shard_worker(cctx, conns)
                value = cctx.mem.read_u32(done_word) + 1
                cctx.mem.write_u32(done_word, value)
                yield from cctx.libc.futex_wake(done_word, 1)

            return body()

        for i in range(1, shard_count):
            yield ctx.spawn_thread(spawn, (i, sizes[i]))
        yield from shard_worker(ctx, sizes[0])
        while ctx.mem.read_u32(done_word) < shard_count - 1:
            current = ctx.mem.read_u32(done_word)
            yield from libc.futex_wait(done_word, current)
        result.finished_ns = ctx.kernel.sim.now
        if spec.drain_hook is not None:
            spec.drain_hook()
        # Ask the server to shut down; retry in case the final
        # connection races a still-full accept queue.
        for _ in range(8):
            fd = yield from libc.socket()
            ret = yield from libc.connect(fd, server_ip, port)
            if ret == 0:
                yield from libc.send(fd, b"QUIT".ljust(REQUEST_SIZE, b"."))
                yield from libc.close(fd)
                break
            yield from libc.close(fd)
            yield from libc.nanosleep(5_000_000)
        return 0

    return Program(name, main, seed=29)


def run_server_benchmark(
    kernel,
    server_program: Program,
    spec: ClientSpec,
    port: int,
    server_runner,
) -> ClientResult:
    """Drive one client/server pair to completion.

    ``server_runner(kernel, server_program)`` must start the server
    (natively, under ReMon, under VARAN, or across a DistMvee cluster)
    without running the simulation; this function then starts the client
    and runs the world. A distributed runner's handle carries the
    cluster topology — ``client_kernel`` (a plain kernel sharing the
    cluster's simulator/network), ``server_ip`` (the leader node) and a
    ``finalize`` callable — so all nine §5.2 profiles run distributed
    with no per-profile glue. Returns the populated
    :class:`ClientResult`.
    """
    from repro.guest import GuestRuntime

    result = ClientResult()
    handle = server_runner(kernel, server_program)
    client_kernel = getattr(handle, "client_kernel", None) or kernel
    server_ip = getattr(handle, "server_ip", "10.0.0.1")
    client_process = client_kernel.create_process("client", host_ip=CLIENT_HOST)
    client = build_client_program(server_ip, port, spec, result)
    GuestRuntime(client_kernel, client_process, client).start()
    client_kernel.sim.run(max_steps=400_000_000)
    finalize = getattr(handle, "finalize", None)
    if finalize is not None:
        finalize()
    del handle
    return result
