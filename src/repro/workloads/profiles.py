"""Benchmark profiles reconstructed from the paper's own figures.

For every benchmark, the paper reports normalized execution times under
GHUMVEE alone and under IP-MON at one or more relaxation levels
(Figures 3 and 4). Those numbers pin down the benchmark's syscall
profile: the overhead drop when level L becomes active measures how
much of the benchmark's syscall traffic belongs to the category level L
exempts, in units of (t_mon - t_ipmon) per call — both of which we
*measure* on this simulator (:mod:`repro.workloads.calibrate`).

The derived category rates are therefore exactly the profile that makes
the reconstructed benchmark behave like the paper's real one on this
substrate. The residual overhead at full relaxation is split between
replica cache pressure (bounded by ``PRESSURE_CAP``) and always-
monitored management calls.

Inversions in the paper's data (an IP-MON bar slightly *above* the
GHUMVEE bar, e.g. ferret) are measurement noise; the derivation clamps
those deltas at zero, so our reproduction reports the envelope instead
of reproducing the noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import Level
from repro.workloads.calibrate import Calibration, calibrate
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload

#: Which category each relaxation level unlocks, and how split traffic
#: is shared when only aggregate information is available.
LEVEL_CATEGORIES = {
    Level.BASE: (("base", 1.0),),
    Level.NONSOCKET_RO: (("file_ro", 0.4), ("futex", 0.6)),
    Level.NONSOCKET_RW: (("file_rw", 1.0),),
    Level.SOCKET_RO: (("sock_ro", 1.0),),
    Level.SOCKET_RW: (("sock_rw", 1.0),),
}

#: Residual overhead attributed to cache pressure before management
#: calls absorb the rest.
PRESSURE_CAP_SUITE = 0.10
PRESSURE_CAP_PHORONIX = 0.05

#: The cost model's pressure for one extra replica (sensitivity 1.0).
BASE_PRESSURE = 0.035


@dataclass
class PaperBenchmark:
    """One benchmark's published results."""

    name: str
    #: Normalized execution time per level; NO_IPMON is required. Suites
    #: measured at a single relaxation level provide just that level.
    targets: Dict[Level, float]
    threads: int = 1
    #: How exempt traffic splits across NONSOCKET_RO categories when the
    #: paper only gives aggregate numbers (PARSEC/SPLASH): most of these
    #: suites' calls are futexes from the pthreads runtime.
    pressure_cap: float = PRESSURE_CAP_SUITE
    native_ms: Optional[float] = None

    def full_series(self) -> Dict[Level, float]:
        """Fill in unmeasured levels monotonically."""
        series = {}
        previous = self.targets[Level.NO_IPMON]
        for level in sorted(Level):
            if level in self.targets:
                previous = self.targets[level]
            series[level] = previous
        return series


#: Category exempted at each level index 1..5 (bundles keep the fixed
#: NONSOCKET_RO split between file reads and futexes).
_LEVEL_ORDER = [
    Level.BASE,
    Level.NONSOCKET_RO,
    Level.NONSOCKET_RW,
    Level.SOCKET_RO,
    Level.SOCKET_RW,
]


def predict_overhead(
    level: Level,
    bundle_rates,
    mgmt_rate: float,
    pressure: float,
    threads: int,
    cal: Calibration,
) -> float:
    """Analytic wall-time model mirroring the simulator.

    Monitored calls serialize on the monitor (its waitpid loop and the
    kernel's tracing locks), so a run is either *compute-bound* — each
    thread pays its own per-call latencies — or *monitor-bound* — the
    wall clock is the monitor's total serial handling time. The paper's
    high-density benchmarks (dedup, water_spatial, network-loopback) sit
    deep in the monitor-bound regime, which is exactly why their GHUMVEE
    overheads are so dramatic.
    """
    t_m = cal.t_mon_ns / 1e9
    t_i = cal.t_ipmon_ns / 1e9
    monitored = mgmt_rate
    unmonitored = 0.0
    for idx, lvl in enumerate(_LEVEL_ORDER):
        if lvl <= level:
            unmonitored += bundle_rates[idx]
        else:
            monitored += bundle_rates[idx]
    per_thread = (monitored * t_m + unmonitored * t_i) / max(1, threads)
    compute_bound = 1.0 + pressure + per_thread
    monitor_bound = monitored * t_m
    return max(compute_bound, monitor_bound)


def derive_workload(
    bench: PaperBenchmark,
    cal: Optional[Calibration] = None,
    native_ms: float = 40.0,
    seed: int = 7,
) -> SyntheticWorkload:
    """Invert the paper's overhead series into category call rates.

    Uses bounded least squares over the analytic model above: unknowns
    are the five per-level traffic bundles, the always-monitored
    management rate, and the cache-pressure term (bounded by the
    benchmark's pressure cap).
    """
    import numpy as np
    from scipy.optimize import minimize

    cal = cal or calibrate()
    series = bench.full_series()
    observed_levels = sorted(bench.targets)
    t_m = cal.t_mon_ns / 1e9
    t_i = cal.t_ipmon_ns / 1e9

    # Initial guess from the naive delta rule (per-thread scaled).
    x0 = []
    previous = series[Level.NO_IPMON]
    for lvl in _LEVEL_ORDER:
        delta = max(0.0, previous - series[lvl])
        previous = min(previous, series[lvl])
        x0.append(delta * max(1, bench.threads) / max(1e-9, t_m - t_i))
    leftover0 = max(0.0, series[Level.SOCKET_RW] - 1.0)
    x0.append(leftover0 / t_m)  # mgmt
    x0.append(min(bench.pressure_cap, leftover0))  # pressure

    # Optimize in log space (rates span decades); Nelder-Mead copes with
    # the compute/monitor-bound kink in the model.
    def unpack(theta):
        bundles = np.expm1(np.clip(theta[:5], 0.0, 20.0))
        mgmt = float(np.expm1(np.clip(theta[5], 0.0, 20.0)))
        pressure = float(np.clip(theta[6], 0.0, bench.pressure_cap))
        return bundles, mgmt, pressure

    def objective(theta):
        bundles, mgmt, pressure = unpack(theta)
        err = 0.0
        for lvl in observed_levels:
            target = max(1.0, bench.targets[lvl])
            pred = predict_overhead(lvl, bundles, mgmt, pressure, bench.threads, cal)
            err += ((pred - target) / target) ** 2
        # Weak preference for exempt-category attribution over mgmt.
        err += (1e-3 * mgmt * t_m) ** 2
        return err

    theta0 = np.array([np.log1p(max(0.0, v)) for v in x0[:6]] + [x0[6]])
    best = minimize(
        objective,
        theta0,
        method="Nelder-Mead",
        options={"maxiter": 6000, "xatol": 1e-6, "fatol": 1e-10},
    )
    bundles, mgmt_rate, pressure = unpack(best.x)

    rates: Dict[str, float] = {}
    for idx, lvl in enumerate(_LEVEL_ORDER):
        for category, share in LEVEL_CATEGORIES[lvl]:
            value = float(bundles[idx]) * share
            if value > 1.0:
                rates[category] = rates.get(category, 0.0) + value
    if mgmt_rate > 1.0:
        rates["mgmt"] = mgmt_rate

    sensitivity = pressure / BASE_PRESSURE if BASE_PRESSURE else 0.0

    # Keep simulations tractable: bound the total number of calls while
    # keeping rates (and thus overhead ratios) intact.
    total_rate = sum(rates.values())
    ms = bench.native_ms or native_ms
    if total_rate > 0:
        max_calls = 6000.0
        ms = min(ms, max(4.0, max_calls / total_rate * 1000.0))

    return SyntheticWorkload(
        name=bench.name,
        native_ms=ms,
        mix=CategoryMix(rates),
        threads=bench.threads,
        cache_sensitivity=sensitivity,
        seed=seed + (_stable_hash(bench.name) & 0xFFFF),
    )


def _stable_hash(text: str) -> int:
    value = 2166136261
    for ch in text.encode():
        value = (value ^ ch) * 16777619 & 0xFFFFFFFF
    return value


def _two_point(name: str, no_ipmon: float, nonsocket_rw: float, threads: int = 4):
    """PARSEC/SPLASH benchmarks were published at two configurations.

    The exempted traffic of these suites is dominated by pthreads
    futexes and file reads (NONSOCKET_RO categories) with a sliver of
    BASE-level getters, so the derivation places 10% of the drop at
    BASE_LEVEL and the rest at NONSOCKET_RO_LEVEL.
    """
    drop = max(0.0, no_ipmon - nonsocket_rw)
    return PaperBenchmark(
        name,
        {
            Level.NO_IPMON: no_ipmon,
            Level.BASE: no_ipmon - 0.1 * drop,
            Level.NONSOCKET_RO: no_ipmon - drop,
            Level.NONSOCKET_RW: nonsocket_rw,
        },
        threads=threads,
    )


# ---------------------------------------------------------------------------
# Figure 3 — PARSEC 2.1 (4 worker threads, 2 replicas)
# ---------------------------------------------------------------------------
PARSEC_BENCHMARKS: List[PaperBenchmark] = [
    _two_point("blackscholes", 1.09, 1.04),
    _two_point("bodytrack", 1.15, 1.03),
    _two_point("dedup", 3.53, 1.69),
    _two_point("facesim", 1.11, 1.03),
    _two_point("ferret", 1.04, 1.11),
    _two_point("fluidanimate", 1.28, 1.33),
    _two_point("freqmine", 1.06, 1.05),
    _two_point("raytrace", 1.03, 1.00),
    _two_point("streamcluster", 1.16, 0.97),
    _two_point("swaptions", 1.07, 1.07),
    _two_point("vips", 1.10, 1.03),
    _two_point("x264", 1.11, 1.16),
]

#: Paper geomeans for Figure 3 (PARSEC): no IP-MON 1.219, IP-MON 1.112.
PARSEC_GEOMEAN_TARGETS = {"no_ipmon": 1.22, "ipmon": 1.11}

# ---------------------------------------------------------------------------
# Figure 3 — SPLASH-2x
# ---------------------------------------------------------------------------
SPLASH_BENCHMARKS: List[PaperBenchmark] = [
    _two_point("barnes", 1.48, 1.52),
    _two_point("fft", 1.03, 1.02),
    _two_point("fmm", 1.55, 1.13),
    _two_point("lu_cb", 1.01, 1.00),
    _two_point("lu_ncb", 0.94, 0.95),
    _two_point("ocean_cp", 1.06, 1.05),
    _two_point("ocean_ncp", 1.09, 1.05),
    _two_point("radiosity", 1.63, 1.38),
    _two_point("radix", 1.05, 1.05),
    _two_point("raytrace_sp", 1.17, 1.02),
    _two_point("volrend", 1.22, 1.07),
    _two_point("water_nsquared", 1.04, 1.02),
    _two_point("water_spatial", 4.20, 1.21),
]

SPLASH_GEOMEAN_TARGETS = {"no_ipmon": 1.29, "ipmon": 1.10}


def _phoronix(name, series, threads=1):
    levels = [
        Level.NO_IPMON,
        Level.BASE,
        Level.NONSOCKET_RO,
        Level.NONSOCKET_RW,
        Level.SOCKET_RO,
        Level.SOCKET_RW,
    ]
    return PaperBenchmark(
        name,
        dict(zip(levels, series)),
        threads=threads,
        pressure_cap=PRESSURE_CAP_PHORONIX,
    )


# ---------------------------------------------------------------------------
# Figure 4 — Phoronix (all six configurations, 2 replicas)
# ---------------------------------------------------------------------------
PHORONIX_BENCHMARKS: List[PaperBenchmark] = [
    _phoronix("compress-gzip", [1.11, 1.11, 1.04, 1.04, 1.04, 1.05]),
    _phoronix("encode-flac", [1.17, 1.17, 1.08, 1.02, 1.02, 1.02]),
    _phoronix("encode-ogg", [1.09, 1.10, 1.06, 1.01, 1.01, 1.01]),
    _phoronix("mencoder", [1.05, 1.04, 1.01, 1.00, 1.00, 1.00]),
    _phoronix("phpbench", [2.48, 1.90, 1.90, 1.13, 1.13, 1.13]),
    _phoronix("unpack-linux", [1.47, 1.48, 1.44, 1.22, 1.17, 1.17]),
    _phoronix("network-loopback", [25.46, 25.36, 24.89, 17.03, 9.18, 3.00], threads=2),
    _phoronix("nginx-phoronix", [9.77, 7.76, 7.74, 7.58, 6.65, 3.71], threads=4),
]

PHORONIX_GEOMEAN_TARGETS = {"no_ipmon": 2.464, "socket_rw": 1.412}


def workloads_for(benchmarks: List[PaperBenchmark], cal: Optional[Calibration] = None):
    cal = cal or calibrate()
    return [(bench, derive_workload(bench, cal)) for bench in benchmarks]
