"""Calibration: measure this simulator's per-call monitoring costs.

The profile derivation in :mod:`repro.workloads.profiles` needs two
quantities, measured rather than assumed:

* ``t_mon`` — the extra virtual time one *monitored* (GHUMVEE-lockstep)
  call costs the master, versus native, and
* ``t_ipmon`` — the extra time one *unmonitored* (IP-MON-replicated)
  call costs.

We measure them by running a microbenchmark (a tight getpid loop) three
ways — native, GHUMVEE-only and BASE-level IP-MON — through the full
stack, and dividing the time difference by the call count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.native import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel, KernelConfig

CAL_CALLS = 400
CAL_GAP_NS = 4_000


def _calibration_program() -> Program:
    def main(ctx):
        for _ in range(CAL_CALLS):
            yield Compute(CAL_GAP_NS)
            yield ctx.sys.getpid()
        return 0

    return Program("calibration", main)


@dataclass(frozen=True)
class Calibration:
    """Measured per-call monitoring costs (virtual ns) for 2 replicas."""

    t_native_ns: float
    t_mon_ns: float
    t_ipmon_ns: float

    def monitored_overhead_at_rate(self, calls_per_sec: float) -> float:
        return calls_per_sec * self.t_mon_ns / 1e9

    def __repr__(self):
        return "Calibration(native=%.0f ns, mon=+%.0f ns, ipmon=+%.0f ns)" % (
            self.t_native_ns,
            self.t_mon_ns,
            self.t_ipmon_ns,
        )


def _run_mvee(level: Level, replicas: int) -> float:
    kernel = Kernel(config=KernelConfig())
    config = ReMonConfig(replicas=replicas, level=level)
    mvee = ReMon(kernel, _calibration_program(), config)
    result = mvee.run(max_steps=10_000_000)
    assert not result.diverged, result.divergence
    return result.wall_time_ns


@lru_cache(maxsize=8)
def calibrate(replicas: int = 2) -> Calibration:
    """Measure the per-call monitored/unmonitored costs for a replica
    count (cached; deterministic)."""
    native = run_native(_calibration_program())
    native_ns = native.wall_time_ns
    # Disable memory-pressure effects for the per-call measurement by
    # subtracting the pure-compute baseline analytically: the
    # calibration program's pressure term is the same in both MVEE runs
    # and tiny next to the syscall costs, so the division below absorbs
    # it symmetrically.
    mon_ns = _run_mvee(Level.NO_IPMON, replicas)
    ipmon_ns = _run_mvee(Level.BASE, replicas)
    t_mon = max(1.0, (mon_ns - native_ns) / CAL_CALLS)
    t_ipmon = max(1.0, (ipmon_ns - native_ns) / CAL_CALLS)
    return Calibration(
        t_native_ns=native_ns / CAL_CALLS,
        t_mon_ns=t_mon,
        t_ipmon_ns=t_ipmon,
    )
