"""PARSEC 2.1 reconstruction (Figure 3, left half).

The paper runs PARSEC with the largest inputs, four worker threads and
two replicas, excluding ``canneal`` (intentional data races that diverge
under any MVEE) and applying Segulja's data-race patches. Profiles are
derived from the published per-benchmark bars; see
:mod:`repro.workloads.profiles`.
"""

from repro.workloads.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_GEOMEAN_TARGETS,
    derive_workload,
    workloads_for,
)

__all__ = [
    "PARSEC_BENCHMARKS",
    "PARSEC_GEOMEAN_TARGETS",
    "derive_workload",
    "workloads_for",
]
