"""Temporal exemption policies (paper §3.4, second option).

After GHUMVEE has approved a series of identical system calls, IP-MON
may *probabilistically* exempt some fraction of the following identical
calls within a time window. The paper stresses that deterministic
variants ("exempt after N approvals in M ms") are insecure: an attacker
can warm the window with benign calls and then slip a malicious call
through unmonitored with certainty. We implement both the stochastic
policy and the deliberately insecure deterministic one, so the security
analysis can demonstrate the difference.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Tuple

Signature = Tuple[str, int]


class TemporalPolicy:
    """Stochastic window-based temporal exemption.

    Args:
        window_ns: how long an approval stays relevant.
        threshold: identical approvals needed before exemption kicks in.
        exempt_probability: chance an eligible call is exempted.
        deterministic: if True, eligible calls are *always* exempted —
            the insecure variant the paper warns about.
        seed: monitor-private RNG seed (the attacker cannot observe it).
    """

    def __init__(
        self,
        window_ns: int = 50_000_000,
        threshold: int = 8,
        exempt_probability: float = 0.5,
        deterministic: bool = False,
        seed: int = 0xC0FFEE,
    ):
        self.window_ns = window_ns
        self.threshold = threshold
        self.exempt_probability = exempt_probability
        self.deterministic = deterministic
        self._rng = random.Random(seed)
        self._approvals: Dict[Signature, Deque[int]] = {}
        self.stats = {"approvals": 0, "exemptions": 0, "declines": 0}

    def signature(self, req) -> Signature:
        first = req.arg(0) if req.args else 0
        if not isinstance(first, int):
            first = hash(first) & 0xFFFFFFFF
        return (req.name, first)

    def record_approval(self, req, now_ns: int) -> None:
        """GHUMVEE approved this (monitored) call."""
        history = self._approvals.setdefault(self.signature(req), deque())
        history.append(now_ns)
        self._trim(history, now_ns)
        self.stats["approvals"] += 1

    def _trim(self, history: Deque[int], now_ns: int) -> None:
        while history and history[0] < now_ns - self.window_ns:
            history.popleft()

    def eligible(self, req, now_ns: int) -> bool:
        history = self._approvals.get(self.signature(req))
        if not history:
            return False
        self._trim(history, now_ns)
        return len(history) >= self.threshold

    def should_exempt(self, req, now_ns: int) -> bool:
        """IP-MON-side decision for one would-be-monitored call."""
        if not self.eligible(req, now_ns):
            self.stats["declines"] += 1
            return False
        if self.deterministic:
            self.stats["exemptions"] += 1
            return True
        if self._rng.random() < self.exempt_probability:
            self.stats["exemptions"] += 1
            return True
        self.stats["declines"] += 1
        return False
