"""The IP-MON replication buffer (paper §3.2, §3.7).

A single shared-memory region (16 MiB by default, System V shm) mapped
into every replica at a *different*, hidden virtual address. The master
appends one record per unmonitored call: serialized arguments, metadata
flags, then — once the call completes — the results. Slaves read
records at their own pace, compare arguments, and copy results out.

Design notes mirrored from the paper:

* **linear, not circular**: each replica thread only reads and writes
  its own position; when the buffer fills, GHUMVEE arbitrates a reset
  instead of the replicas sharing read/write cursors (§3.2);
* **per-invocation condition variables**: every record embeds its own
  state word that slaves futex-wait on; no reuse, no reset, and no
  FUTEX_WAKE when nobody waits (§3.7);
* **per-thread lanes**: multi-threaded replicas write records for each
  logical thread into that thread's slice of the region, which is how
  "each replica thread only reads and writes its own RB position"
  generalizes to threads.

The record payload genuinely lives in the shared region's bytes, so an
attacker who learns the RB's address can tamper with slave validation —
exactly the attack surface §4 analyzes (and that hiding the RB pointer
defends).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.kernel.memory import SharedRegion
from repro.kernel.waitq import WaitQueue

DEFAULT_RB_SIZE = 16 << 20
MAX_LANES = 32

# Record header layout (32 bytes):
#   u32 state        (0 = allocated, 1 = args ready, 2 = results ready)
#   u32 waiters      (slaves currently blocked on this record)
#   u32 syscall_len  (length of the args blob)
#   u32 flags        (bit 0: may-block, bit 1: forwarded-to-monitor)
#   i64 result
#   u32 result_len
#   u32 _pad
HEADER_FMT = "<IIIIqII"
HEADER_SIZE = struct.calcsize(HEADER_FMT)

STATE_ALLOCATED = 0
STATE_ARGS_READY = 1
STATE_RESULTS_READY = 2

FLAG_MAY_BLOCK = 1
FLAG_FORWARDED = 2

OFF_STATE = 0
OFF_WAITERS = 4
OFF_RESULT = 16


class RBRecord:
    """Monitor-side handle on one record (offsets into the region)."""

    __slots__ = ("lane", "seq", "offset", "capacity", "args_len", "result_len")

    def __init__(self, lane: "RBLane", seq: int, offset: int, capacity: int):
        self.lane = lane
        self.seq = seq
        self.offset = offset
        self.capacity = capacity
        self.args_len = 0
        self.result_len = 0

    # -- region accessors -------------------------------------------------
    @property
    def region(self) -> SharedRegion:
        return self.lane.rb.region

    def state(self) -> int:
        return struct.unpack_from("<I", self.region.data, self.offset + OFF_STATE)[0]

    def set_state(self, value: int) -> None:
        struct.pack_into("<I", self.region.data, self.offset + OFF_STATE, value)

    def waiters(self) -> int:
        return struct.unpack_from("<I", self.region.data, self.offset + OFF_WAITERS)[0]

    def add_waiter(self, delta: int) -> None:
        # Clamped: the word lives in attacker-writable shared memory, so
        # arithmetic on it must never raise out of range.
        struct.pack_into(
            "<I",
            self.region.data,
            self.offset + OFF_WAITERS,
            max(0, min(0xFFFFFFFF, self.waiters() + delta)),
        )

    def state_word_offset(self) -> int:
        """Region offset of the condvar word slaves futex-wait on."""
        return self.offset + OFF_STATE

    def write_args(self, blob: bytes, flags: int) -> None:
        self.args_len = len(blob)
        struct.pack_into(
            HEADER_FMT,
            self.region.data,
            self.offset,
            STATE_ALLOCATED,
            0,
            len(blob),
            flags,
            0,
            0,
            0,
        )
        start = self.offset + HEADER_SIZE
        self.region.data[start : start + len(blob)] = blob
        self.set_state(STATE_ARGS_READY)

    def read_args(self) -> bytes:
        length = struct.unpack_from("<I", self.region.data, self.offset + 8)[0]
        start = self.offset + HEADER_SIZE
        return bytes(self.region.data[start : start + length])

    def flags(self) -> int:
        return struct.unpack_from("<I", self.region.data, self.offset + 12)[0]

    def write_results(self, result: int, payload: bytes) -> None:
        args_len = struct.unpack_from("<I", self.region.data, self.offset + 8)[0]
        self.result_len = len(payload)
        struct.pack_into(
            "<qII",
            self.region.data,
            self.offset + OFF_RESULT,
            result,
            len(payload),
            0,
        )
        start = self.offset + HEADER_SIZE + args_len
        self.region.data[start : start + len(payload)] = payload
        self.set_state(STATE_RESULTS_READY)

    def read_results(self):
        args_len = struct.unpack_from("<I", self.region.data, self.offset + 8)[0]
        result, result_len, _pad = struct.unpack_from(
            "<qII", self.region.data, self.offset + OFF_RESULT
        )
        start = self.offset + HEADER_SIZE + args_len
        return result, bytes(self.region.data[start : start + result_len])

    def total_bytes(self) -> int:
        return HEADER_SIZE + self.args_len + self.result_len

    def poison(self) -> None:
        """Degraded mode: the master died before finishing this record.
        Mark it forwarded-to-monitor with an empty result so survivors
        route the corresponding call to GHUMVEE's rendezvous instead of
        trusting a half-written record."""
        flags = self.flags() | FLAG_FORWARDED
        struct.pack_into("<I", self.region.data, self.offset + 12, flags)
        struct.pack_into(
            "<qII", self.region.data, self.offset + OFF_RESULT, 0, 0, 0
        )
        self.set_state(STATE_RESULTS_READY)


class RBLane:
    """One logical thread's slice of the replication buffer."""

    def __init__(self, rb: "ReplicationBuffer", vtid: int, base: int, size: int):
        self.rb = rb
        self.vtid = vtid
        self.base = base
        self.size = size
        self.generation = 0
        self.master_offset = 0
        self.master_seq = 0
        self.records: List[RBRecord] = []
        #: per-slave consumption counts, indexed by replica index (the
        #: master's own slot stays at 0 and is ignored).
        self.consumed: Dict[int, int] = {}
        self.args_waitq = WaitQueue("rb-args:%d" % vtid)
        self.catchup_waitq = WaitQueue("rb-catchup:%d" % vtid)
        self.resets = 0

    # -- master side -------------------------------------------------------
    def fits(self, nbytes: int) -> bool:
        return HEADER_SIZE + nbytes <= self.size

    def has_room(self, nbytes: int) -> bool:
        return self.master_offset + HEADER_SIZE + nbytes <= self.size

    def slaves_caught_up(self) -> bool:
        return all(seq >= self.master_seq for seq in self.consumed.values())

    def reserve(self, nbytes: int) -> RBRecord:
        """Allocate the next record (caller ensured it fits)."""
        offset = self.base + self.master_offset
        capacity = HEADER_SIZE + nbytes
        record = RBRecord(self, self.master_seq, offset, capacity)
        # Zero the header so the state word starts at ALLOCATED.
        self.rb.region.data[offset : offset + HEADER_SIZE] = b"\x00" * HEADER_SIZE
        self.master_offset += capacity
        self.master_seq += 1
        self.records.append(record)
        return record

    def publish_args(self, sim) -> None:
        self.args_waitq.notify_all(sim)

    def reset(self, sim) -> None:
        """GHUMVEE-arbitrated reset: all slaves have consumed everything."""
        self.generation += 1
        self.master_offset = 0
        self.records.clear()
        self.master_seq = 0
        for key in self.consumed:
            self.consumed[key] = 0
        self.resets += 1
        self.args_waitq.notify_all(sim)

    # -- slave side ----------------------------------------------------------
    def next_record_for(self, replica_index: int) -> Optional[RBRecord]:
        seq = self.consumed.get(replica_index, 0)
        if seq < len(self.records):
            return self.records[seq]
        return None

    def consume(self, replica_index: int, sim) -> None:
        self.consumed[replica_index] = self.consumed.get(replica_index, 0) + 1
        if self.slaves_caught_up():
            self.catchup_waitq.notify_all(sim)


class ReplicationBuffer:
    """The shared region plus its lane directory."""

    #: Reserved region header (signals-pending flag and future fields).
    HEADER_RESERVED = 64

    #: Minimum useful lane size; small buffers get fewer lanes rather
    #: than lanes too small to hold a single I/O record.
    MIN_LANE_SIZE = 128 << 10

    def __init__(self, size: int = DEFAULT_RB_SIZE, lanes: Optional[int] = None):
        self.size = size
        if lanes is None:
            lanes = max(1, min(MAX_LANES, size // self.MIN_LANE_SIZE))
        self.max_lanes = lanes
        self.lane_size = (size - self.HEADER_RESERVED) // lanes
        self.region = SharedRegion(size, "ipmon-rb")
        self.lanes: Dict[int, RBLane] = {}
        self.total_records = 0
        self.total_bytes = 0

    def lane(self, vtid: int) -> Optional[RBLane]:
        lane = self.lanes.get(vtid)
        if lane is None:
            if len(self.lanes) >= self.max_lanes:
                return None
            index = len(self.lanes)
            lane = RBLane(
                self,
                vtid,
                self.HEADER_RESERVED + index * self.lane_size,
                self.lane_size,
            )
            self.lanes[vtid] = lane
        return lane

    def register_slave(self, replica_index: int) -> None:
        for lane in self.lanes.values():
            lane.consumed.setdefault(replica_index, lane.master_seq)

    def attach_slave_to_lane(self, lane: RBLane, replica_index: int) -> None:
        lane.consumed.setdefault(replica_index, 0)

    def stats(self) -> dict:
        return {
            "records": self.total_records,
            "bytes": self.total_bytes,
            "resets": sum(lane.resets for lane in self.lanes.values()),
        }
