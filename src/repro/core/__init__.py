"""ReMon: the paper's primary contribution.

The package wires three components around a replica group:

* :class:`~repro.core.ghumvee.Ghumvee` — the cross-process monitor
  enforcing lockstep execution of monitored calls,
* :class:`~repro.core.ipmon.IpMon` — the in-process monitor replicating
  unmonitored calls through the shared replication buffer,
* :class:`~repro.core.ikb.InKernelBroker` — the kernel broker routing
  each call to one or the other under a relaxation policy.

:class:`~repro.core.remon.ReMon` is the public entry point.
"""

from repro.core.events import DivergenceReport, MveeResult
from repro.core.policies import DegradationPolicy, Level, RelaxationPolicy
from repro.core.remon import ReMon, ReMonConfig

__all__ = [
    "DegradationPolicy",
    "DivergenceReport",
    "Level",
    "MveeResult",
    "ReMon",
    "ReMonConfig",
    "RelaxationPolicy",
]
