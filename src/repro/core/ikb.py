"""IK-B: the in-kernel system-call broker (paper §3, §3.1, §3.5).

IK-B intercepts every system call of a registered replica and routes it:
calls in the registered unmonitored set are forwarded to IP-MON's entry
point with a fresh one-time 64-bit authorization token; everything else
falls through to the ptrace path and lands in GHUMVEE.

The *verifier* half enforces the security contract: an unmonitored call
may only complete if it is restarted from within IP-MON with the token
intact; a wrong or missing token, a different syscall than the one the
token was granted for, or a restart not originating at IP-MON's entry
point all revoke the token and force the call to GHUMVEE. This is the
CFI-like property of §3.1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.kernel import errno_codes as E
from repro.kernel.syscalls import SyscallRequest, syscall
from repro.sim import Sleep


class IpmonRegistration:
    """The state established by the ipmon_register syscall (§3.5)."""

    __slots__ = ("process", "unmonitored", "replica", "rb_base", "entry_point")

    def __init__(self, process, unmonitored, replica, rb_base, entry_point):
        self.process = process
        self.unmonitored = frozenset(unmonitored)
        self.replica = replica  # the IpmonReplica instance
        self.rb_base = rb_base  # hidden pointer, kept in "kernel memory"
        self.entry_point = entry_point


class InKernelBroker:
    """Kernel hook implementing the IK-B interceptor and verifier."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.registrations: Dict[int, IpmonRegistration] = {}
        # One-time tokens per thread tid: (token_value, syscall_name).
        self._outstanding: Dict[int, Tuple[int, str]] = {}
        self.stats = {
            "forwarded_to_ipmon": 0,
            "forwarded_to_monitor": 0,
            "tokens_issued": 0,
            "tokens_revoked": 0,
            "tokens_lost": 0,
            "tokens_reissued": 0,
            "verification_failures": 0,
        }
        kernel.ikb = self

    # ------------------------------------------------------------------
    # Registration (invoked via the ipmon_register syscall handler)
    # ------------------------------------------------------------------
    def register(self, process, unmonitored, replica, rb_base, entry_point) -> None:
        self.registrations[process.pid] = IpmonRegistration(
            process, unmonitored, replica, rb_base, entry_point
        )

    def unregister(self, process) -> None:
        self.registrations.pop(process.pid, None)

    def registration_for(self, process) -> Optional[IpmonRegistration]:
        return self.registrations.get(process.pid)

    # ------------------------------------------------------------------
    # Interceptor: installed as a kernel syscall hook
    # ------------------------------------------------------------------
    def intercept(self, thread, req: SyscallRequest):
        registration = self.registrations.get(thread.process.pid)
        if registration is None:
            return None  # not a ReMon replica (or IP-MON not registered)
        if req.site == "ipmon":
            # A raw syscall claiming to come from IP-MON arrived through
            # the normal path: it was not dispatched by this broker, so
            # any token it carries cannot be outstanding. Verify (and
            # fail) so the attempt is forced to the monitor.
            ok = self._check_token(thread, req)
            if not ok:
                self.stats["verification_failures"] += 1
                return self._monitor_path(thread, req)
            return None
        if req.name not in registration.unmonitored:
            return None  # monitored call: fall through to ptrace/GHUMVEE
        return self._forward_to_ipmon(thread, req, registration)

    def _forward_to_ipmon(self, thread, req, registration):
        costs = self.kernel.config.costs
        token = self.kernel.random_u64()
        injector = getattr(self.kernel, "fault_injector", None)
        if injector is not None and injector.steal_token(thread, req):
            # Fault injection: the token is issued but never recorded as
            # outstanding, so IP-MON's restart will fail verification.
            self.stats["tokens_lost"] += 1
        else:
            self._outstanding[thread.tid] = (token, req.name)
        self.stats["tokens_issued"] += 1
        self.stats["forwarded_to_ipmon"] += 1
        obs = getattr(self.kernel, "obs", None)
        if obs is not None and obs.tracer.enabled:
            obs.tracer.instant(
                "ikb", "route-ipmon", syscall=req.name, vtid=thread.vtid,
                replica=getattr(thread.process, "replica_index", None),
            )
            yield Sleep(costs.ikb_forward_ns + obs.span_cost_ns, cpu=True)
        else:
            yield Sleep(costs.ikb_forward_ns, cpu=True)
        # Overwrite the "program counter": re-enter userspace at IP-MON's
        # syscall entry point, with the token and RB pointer in reserved
        # registers (modelled as call arguments that never touch guest
        # memory).
        result = yield from registration.entry_point(
            thread, req, token, registration.rb_base
        )
        self._outstanding.pop(thread.tid, None)
        return result

    # ------------------------------------------------------------------
    # Verifier: IP-MON restarts the call into this path
    # ------------------------------------------------------------------
    def restart_call(self, thread, req: SyscallRequest):
        """Coroutine: kernel re-entry for a call restarted by IP-MON.

        Returns ``(True, result)`` if the token verified and the call
        executed unmonitored, or ``(False, None)`` if verification
        failed (caller must take the monitored path).
        """
        if not self._check_token(thread, req):
            self.stats["verification_failures"] += 1
            self.stats["tokens_revoked"] += 1
            self._outstanding.pop(thread.tid, None)
            return False, None
        self._outstanding.pop(thread.tid, None)  # single use
        result = yield from self.kernel.invoke(thread, req)
        return True, result

    def _check_token(self, thread, req) -> bool:
        outstanding = self._outstanding.get(thread.tid)
        if outstanding is None:
            return False
        token, name = outstanding
        if req.token != token:
            return False
        if req.name != name:
            return False  # a *different* syscall than authorized
        if req.site != "ipmon":
            return False  # restart did not originate inside IP-MON
        return True

    def revoke_token(self, thread) -> None:
        """IP-MON destroys its token (MAYBE_CHECKED forwarding, §3.3)."""
        if self._outstanding.pop(thread.tid, None) is not None:
            self.stats["tokens_revoked"] += 1

    def has_outstanding(self, thread) -> bool:
        return thread.tid in self._outstanding

    def reissue_token(self, thread, req) -> int:
        """Re-issue a fresh token for an in-flight IP-MON call.

        Only reachable from inside IP-MON's entry point while a
        :class:`~repro.core.policies.DegradationPolicy` permits it: a
        benign token loss then costs one retry instead of a forwarded
        call. The verifier contract is otherwise unchanged — the new
        token is single-use and bound to the same syscall name.
        """
        token = self.kernel.random_u64()
        self._outstanding[thread.tid] = (token, req.name)
        self.stats["tokens_reissued"] += 1
        return token

    # ------------------------------------------------------------------
    # Monitored path
    # ------------------------------------------------------------------
    def _monitor_path(self, thread, req):
        result = yield from self.route_to_monitor(thread, req)
        return result

    def route_to_monitor(self, thread, req: SyscallRequest):
        """Coroutine: revoke any token and hand the call to GHUMVEE."""
        self.revoke_token(thread)
        self.stats["forwarded_to_monitor"] += 1
        obs = getattr(self.kernel, "obs", None)
        if obs is not None and obs.tracer.enabled:
            obs.tracer.instant(
                "ikb", "route-monitor", syscall=req.name, vtid=thread.vtid,
                replica=getattr(thread.process, "replica_index", None),
            )
        clean = req.replace(site="app", token=None)
        result = yield from self.kernel.traced_invoke(thread, clean)
        return result


# ---------------------------------------------------------------------------
# The registration syscall IK-B adds to the kernel (paper §3.5). It is
# always monitored: the kernel reports it to GHUMVEE (via the normal
# ptrace path), which arbitrates before the broker records anything.
# ---------------------------------------------------------------------------
@syscall("ipmon_register")
def sys_ipmon_register(kernel, thread, unmonitored=None, rb_ptr=0, entry_point=None):
    broker = getattr(kernel, "ikb", None)
    if broker is None:
        return -E.ENOSYS
    replica = getattr(thread.process, "ipmon_replica", None)
    if replica is None or entry_point is None:
        return -E.EINVAL
    if not rb_ptr or not thread.process.space.is_mapped(rb_ptr):
        return -E.EFAULT  # the RB pointer must point at a writable region
    broker.register(
        thread.process, unmonitored or frozenset(), replica, rb_ptr, entry_point
    )
    return 0
