"""IP-MON's per-syscall replication handlers (paper §3.3, Listing 1).

Every unmonitored-capable syscall gets a handler with the paper's four
phases:

* ``maybe_checked`` — should this particular invocation be forced back
  to GHUMVEE under the active conditional policy? (consults the file
  map);
* ``calcsize`` — upper bound on the RB space the record may need;
* ``precall``-equivalents — argument serialization (shared with the
  comparator) and the call disposition (MASTERCALL vs. execute-in-all);
* ``postcall`` — collecting the master's results into the RB and
  applying them in the slaves.

Most handlers are generated from the ABI specs; epoll, poll, select,
ioctl and futex need bespoke logic.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.core.policies import (
    RelaxationPolicy,
    SAFE_FCNTL_CMDS,
    SAFE_IOCTL_CMDS,
)
from repro.kernel import constants as C
from repro.kernel.memory import MemoryFault
from repro.kernel.specs import spec_for
from repro.kernel.structs import (
    EPOLL_EVENT_SIZE,
    POLLFD_SIZE,
    pack_epoll_event,
    pack_pollfd,
    read_iovecs,
    unpack_epoll_event,
    unpack_pollfd,
)

#: Call dispositions.
MASTERCALL = "master"
ALLCALL = "all"

#: Calls every replica must execute itself (process-local effects that
#: cannot be replicated from the master: waking *this replica's* threads,
#: advising *this replica's* pages).
ALLCALL_NAMES = frozenset({"futex", "madvise", "fadvise64", "sched_yield"})

_READ_LIKE = frozenset({"read", "readv", "pread64", "preadv"})
_WRITE_LIKE = frozenset({"write", "writev", "pwrite64", "pwritev"})


class IpmonHandler:
    """Generic spec-driven handler; subclasses specialize."""

    def __init__(self, name: str):
        self.name = name
        self.spec = spec_for(name)

    # ------------------------------------------------------------------
    def maybe_checked(self, view, req) -> bool:
        """True = this invocation must be monitored by GHUMVEE."""
        policy: RelaxationPolicy = view.policy
        if policy.allows_unconditionally(self.name):
            return False
        if not policy.is_conditional(self.name):
            return True
        fd = req.arg(0)
        kind = view.filemap.fd_kind(fd)
        if self.name == "fcntl":
            return req.arg(1) not in SAFE_FCNTL_CMDS or kind is None
        if self.name == "ioctl":
            return req.arg(1) not in SAFE_IOCTL_CMDS or kind is None
        return not policy.allows_fd_kind(self.name, kind, view.filemap.is_nonblocking(fd))

    # ------------------------------------------------------------------
    def disposition(self) -> str:
        return ALLCALL if self.name in ALLCALL_NAMES else MASTERCALL

    # ------------------------------------------------------------------
    def may_block(self, view, req) -> bool:
        if self.spec is None or not self.spec.blocking:
            return False
        if self.name == "nanosleep":
            return True
        if self.name == "futex":
            return (req.arg(1) & ~C.FUTEX_PRIVATE_FLAG) == C.FUTEX_WAIT
        fd = req.arg(0)
        return view.filemap.may_block(self.name, fd)

    # ------------------------------------------------------------------
    def calcsize(self, view, req) -> int:
        """Maximum result payload (bytes) this call may write to the RB."""
        if self.spec is None:
            return 0
        total = 0
        for index in self.spec.out_buffers():
            arg_spec = self.spec.args[index]
            if index >= len(req.args) or not req.args[index]:
                total += 4
                continue
            if arg_spec.kind == "iovec_out":
                try:
                    count = int(req.args[arg_spec.count_arg])
                    iovecs = read_iovecs(view.space, int(req.args[index]), count)
                    total += 4 + sum(length for _b, length in iovecs)
                except MemoryFault:
                    total += 4
            else:
                total += 4 + _resolve(arg_spec.length, req.args)
        return total

    # ------------------------------------------------------------------
    # Master: read the out-buffers the kernel filled; build the payload.
    def collect_results(self, view, req, result: int) -> bytes:
        if self.spec is None or result < 0:
            return b""
        chunks = []
        for index in self.spec.out_buffers():
            arg_spec = self.spec.args[index]
            addr = int(req.args[index]) if index < len(req.args) else 0
            if not addr:
                chunks.append(struct.pack("<I", 0))
                continue
            valid = self._valid_length(arg_spec, req.args, result)
            try:
                data = view.space.read(addr, valid, check_prot=False) if valid else b""
            except MemoryFault:
                data = b""
            chunks.append(struct.pack("<I", len(data)) + data)
        return b"".join(chunks)

    # Slave: scatter the payload into this replica's own buffers.
    def apply_results(self, view, req, result: int, payload: bytes) -> None:
        if self.spec is None or result < 0 or not payload:
            return
        cursor = 0
        for index in self.spec.out_buffers():
            if cursor + 4 > len(payload):
                break
            (length,) = struct.unpack_from("<I", payload, cursor)
            cursor += 4
            data = payload[cursor : cursor + length]
            cursor += length
            addr = int(req.args[index]) if index < len(req.args) else 0
            if not addr or not data:
                continue
            arg_spec = self.spec.args[index]
            try:
                if arg_spec.kind == "iovec_out":
                    count = int(req.args[arg_spec.count_arg])
                    iovecs = read_iovecs(view.space, addr, count)
                    offset = 0
                    for base, iov_len in iovecs:
                        if offset >= len(data):
                            break
                        chunk = data[offset : offset + iov_len]
                        view.space.write(base, chunk, check_prot=False)
                        offset += len(chunk)
                else:
                    view.space.write(addr, data, check_prot=False)
            except MemoryFault:
                # The slave's buffer is bad where the master's was fine:
                # genuine divergence; let the consistency check machinery
                # handle it (the result copy is simply dropped here).
                return

    def _valid_length(self, arg_spec, args, result: int) -> int:
        maxlen = _resolve(arg_spec.length, args)
        valid_src = getattr(arg_spec, "valid", None)
        if valid_src is None:
            return maxlen
        kind, value = valid_src
        if kind == "ret":
            return max(0, min(result, maxlen))
        if kind == "fixed":
            return min(value, maxlen) if maxlen else value
        if kind == "arg":
            return min(maxlen, max(0, int(args[value]))) if value < len(args) else maxlen
        return maxlen


def _resolve(length_source, args) -> int:
    kind, value = length_source
    if kind == "fixed":
        return value
    if kind == "arg":
        return max(0, int(args[value])) if value < len(args) else 0
    return 0


# ---------------------------------------------------------------------------
# Bespoke handlers
# ---------------------------------------------------------------------------
class PollHandler(IpmonHandler):
    """poll(2): checks every watched descriptor against the policy and
    replicates the whole pollfd array."""

    def maybe_checked(self, view, req) -> bool:
        fds_addr, nfds = req.arg(0), req.arg(1)
        if not fds_addr or nfds <= 0:
            return True
        try:
            raw = view.space.read(fds_addr, nfds * POLLFD_SIZE)
        except MemoryFault:
            return True
        for index in range(nfds):
            fd, _events, _rev = unpack_pollfd(
                raw[index * POLLFD_SIZE : (index + 1) * POLLFD_SIZE]
            )
            if fd < 0:
                continue
            kind = view.filemap.fd_kind(fd)
            if not view.policy.allows_fd_kind("poll", kind, False):
                return True
        return False

    def may_block(self, view, req) -> bool:
        return req.arg(2) != 0

    def calcsize(self, view, req) -> int:
        return 4 + max(0, req.arg(1)) * POLLFD_SIZE

    def collect_results(self, view, req, result: int) -> bytes:
        if result < 0:
            return b""
        nfds = req.arg(1)
        try:
            raw = view.space.read(req.arg(0), nfds * POLLFD_SIZE, check_prot=False)
        except MemoryFault:
            raw = b""
        return struct.pack("<I", len(raw)) + raw

    def apply_results(self, view, req, result: int, payload: bytes) -> None:
        if result < 0 or len(payload) < 4:
            return
        (length,) = struct.unpack_from("<I", payload, 0)
        raw = payload[4 : 4 + length]
        # Keep the slave's own fd/events fields; copy only revents.
        nfds = min(req.arg(1), len(raw) // POLLFD_SIZE)
        for index in range(nfds):
            fd, events, revents = unpack_pollfd(
                raw[index * POLLFD_SIZE : (index + 1) * POLLFD_SIZE]
            )
            try:
                view.space.write(
                    req.arg(0) + index * POLLFD_SIZE,
                    pack_pollfd(fd, events, revents),
                    check_prot=False,
                )
            except MemoryFault:
                return


class SelectHandler(IpmonHandler):
    """select(2): policy check scans the read/write fd_set bitmaps."""

    FDSET_BYTES = 128

    def maybe_checked(self, view, req) -> bool:
        nfds = req.arg(0)
        for set_index in (1, 2, 3):
            addr = req.arg(set_index)
            if not addr:
                continue
            try:
                bitmap = view.space.read(addr, self.FDSET_BYTES)
            except MemoryFault:
                return True
            for fd in range(min(nfds, self.FDSET_BYTES * 8)):
                if bitmap[fd // 8] & (1 << (fd % 8)):
                    kind = view.filemap.fd_kind(fd)
                    if not view.policy.allows_fd_kind("select", kind, False):
                        return True
        return False

    def may_block(self, view, req) -> bool:
        return True  # timeout handling is data-dependent; be conservative


class FutexHandler(IpmonHandler):
    """futex(2): process-local; every replica executes its own call."""

    def maybe_checked(self, view, req) -> bool:
        if view.policy.level < 2:  # needs NONSOCKET_RO
            return True
        op = req.arg(1) & ~C.FUTEX_PRIVATE_FLAG
        return op not in (C.FUTEX_WAIT, C.FUTEX_WAKE)

    def calcsize(self, view, req) -> int:
        return 0

    def collect_results(self, view, req, result: int) -> bytes:
        return b""

    def apply_results(self, view, req, result: int, payload: bytes) -> None:
        return


class IoctlHandler(IpmonHandler):
    def calcsize(self, view, req) -> int:
        return 8

    def collect_results(self, view, req, result: int) -> bytes:
        if result < 0 or req.arg(1) != 0x541B or not req.arg(2):  # FIONREAD
            return b""
        try:
            data = view.space.read(req.arg(2), 4, check_prot=False)
        except MemoryFault:
            return b""
        return struct.pack("<I", 4) + data

    def apply_results(self, view, req, result: int, payload: bytes) -> None:
        if result < 0 or len(payload) < 8 or not req.arg(2):
            return
        try:
            view.space.write(req.arg(2), payload[4:8], check_prot=False)
        except MemoryFault:
            return


class EpollWaitHandler(IpmonHandler):
    """epoll_wait(2) with the shadow-map translation (paper §3.9)."""

    def maybe_checked(self, view, req) -> bool:
        return view.policy.level < 4  # SOCKET_RO

    def may_block(self, view, req) -> bool:
        return req.arg(3) != 0

    def calcsize(self, view, req) -> int:
        return 4 + max(0, req.arg(2)) * (EPOLL_EVENT_SIZE + 1)

    def collect_results(self, view, req, result: int) -> bytes:
        if result <= 0:
            return b""
        epfd = req.arg(0)
        try:
            raw = view.space.read(
                req.arg(1), result * EPOLL_EVENT_SIZE, check_prot=False
            )
        except MemoryFault:
            return b""
        events = [
            unpack_epoll_event(raw[i * EPOLL_EVENT_SIZE : (i + 1) * EPOLL_EVENT_SIZE])
            for i in range(result)
        ]
        neutral = view.epoll_map.neutralize_events(epfd, events)
        # Localize the master's *own* buffer too: after a promotion the
        # kernel still echoes the dead master's data values, which this
        # replica's program cannot map. Pre-promotion it's an identity
        # rewrite.
        localized = view.epoll_map.localize_events(epfd, neutral, view.replica_index)
        for index, (revents, data) in enumerate(localized):
            try:
                view.space.write(
                    req.arg(1) + index * EPOLL_EVENT_SIZE,
                    pack_epoll_event(revents, data),
                    check_prot=False,
                )
            except MemoryFault:
                break
        out = bytearray(struct.pack("<I", len(neutral)))
        for revents, value, translated in neutral:
            out += struct.pack("<IQB", revents, value, translated)
        return bytes(out)

    def apply_results(self, view, req, result: int, payload: bytes) -> None:
        if result <= 0 or len(payload) < 4:
            return
        (count,) = struct.unpack_from("<I", payload, 0)
        neutral = []
        cursor = 4
        for _ in range(count):
            revents, value, translated = struct.unpack_from("<IQB", payload, cursor)
            cursor += 13
            neutral.append((revents, value, translated))
        localized = view.epoll_map.localize_events(
            req.arg(0), neutral, view.replica_index
        )
        for index, (revents, data) in enumerate(localized):
            try:
                view.space.write(
                    req.arg(1) + index * EPOLL_EVENT_SIZE,
                    pack_epoll_event(revents, data),
                    check_prot=False,
                )
            except MemoryFault:
                return


class EpollCtlHandler(IpmonHandler):
    """epoll_ctl(2): master executes; *every* replica records its own
    ``data`` value into the shadow map."""

    def maybe_checked(self, view, req) -> bool:
        return view.policy.level < 5  # SOCKET_RW

    def observe(self, view, req) -> None:
        op, fd = req.arg(1), req.arg(2)
        epfd = req.arg(0)
        if op == C.EPOLL_CTL_DEL:
            view.epoll_map.record_ctl_del(epfd, fd, view.replica_index)
            return
        addr = req.arg(3)
        if not addr:
            return
        try:
            raw = view.space.read(addr, EPOLL_EVENT_SIZE)
        except MemoryFault:
            return
        _events, data = unpack_epoll_event(raw)
        view.epoll_map.record_ctl_add(epfd, fd, view.replica_index, data)


_CUSTOM = {
    "poll": PollHandler,
    "select": SelectHandler,
    "futex": FutexHandler,
    "ioctl": IoctlHandler,
    "epoll_wait": EpollWaitHandler,
    "epoll_ctl": EpollCtlHandler,
}


def build_handler_table(names) -> Dict[str, IpmonHandler]:
    table = {}
    for name in names:
        cls = _CUSTOM.get(name, IpmonHandler)
        table[name] = cls(name)
    return table


def handler_for(table: Dict[str, IpmonHandler], name: str) -> Optional[IpmonHandler]:
    return table.get(name)
