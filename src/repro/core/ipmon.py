"""IP-MON: the in-process monitor (paper §3.2-§3.9).

One :class:`IpmonReplica` lives inside each replica process (the paper
loads it as a shared library); they cooperate through the shared
replication buffer. The master executes unmonitored calls and publishes
arguments and results; slaves validate their own arguments against the
master's record and copy the results out, without any context switch to
GHUMVEE.

Security-relevant modelling choices (§3.1):

* the RB pointer and the authorization token travel as coroutine
  arguments — never written to guest memory — mirroring the reserved
  registers of the real implementation;
* all result copies go through the RB region's actual bytes, so an
  attacker who finds the RB can tamper with slave validation;
* IP-MON completes calls only through IK-B's verifier, with the token
  intact, via its registered entry point.
"""

from __future__ import annotations

from typing import List

from repro.core.comparator import serialize_args
from repro.core.events import DivergenceReport
from repro.core.fdtable import FileMapView
from repro.core.handlers import (
    ALLCALL,
    EpollCtlHandler,
    MASTERCALL,
    build_handler_table,
)
from repro.core.rb import (
    FLAG_FORWARDED,
    FLAG_MAY_BLOCK,
    STATE_ARGS_READY,
    STATE_RESULTS_READY,
    ReplicationBuffer,
)
from repro.errors import SecurityViolation
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.syscalls import SyscallRequest
from repro.kernel.waitq import wait_interruptible
from repro.sim import Sleep

#: After this many spin iterations a slave falls back to the futex path
#: even for calls predicted not to block.
SPIN_LIMIT = 64

#: Region offset of the signals-pending flag GHUMVEE sets (§3.8). The
#: lanes start after this reserved header.
SIGNALS_PENDING_OFFSET = 0

#: Sentinel a slave path returns when, while it waited, the master died
#: and *this* replica was promoted: entry() retries the call as master.
_RETRY_AS_MASTER = object()


class IpMonGroup:
    """The cross-replica coordinator: owns the RB and the handler table."""

    def __init__(self, remon, policy, rb_size: int = 16 << 20, force_spin: bool = False):
        self.remon = remon
        self.kernel = remon.kernel
        self.policy = policy
        self.rb = ReplicationBuffer(rb_size)
        self.handlers = build_handler_table(policy.unmonitored_set())
        self.replicas: List["IpmonReplica"] = []
        #: Ablation knob: slaves always spin-read instead of using the
        #: per-invocation futex condition variables of §3.7.
        self.force_spin = force_spin
        self.stats = {
            "unmonitored_calls": 0,
            "forwarded_conditional": 0,
            "forwarded_signals": 0,
            "forwarded_size": 0,
            "rb_resets": 0,
            "futex_waits": 0,
            "futex_wakes_skipped": 0,
            "spin_fallbacks": 0,
            "spin_iterations": 0,
            "rb_backoff_retries": 0,
            "token_reissues": 0,
        }
        self.obs = remon.obs
        self._obs_ns = self.obs.dispatch_cost_ns if self.obs is not None else 0

    def signals_pending(self) -> bool:
        return self.rb.region.data[SIGNALS_PENDING_OFFSET] != 0

    def set_signals_pending(self, value: bool) -> None:
        self.rb.region.data[SIGNALS_PENDING_OFFSET] = 1 if value else 0

    def on_replica_quarantined(self, index: int, was_master: bool) -> None:
        """Release a quarantined replica's RB state.

        For a dead *master*, every record it left unfinished is poisoned
        (marked forwarded-to-monitor with an empty result): survivors
        then route those calls to GHUMVEE, whose lockstep rendezvous
        re-executes them safely instead of trusting half-written
        records. For any dead replica, its consumption cursor is
        dropped so full lanes can reset without waiting on a corpse.
        """
        sim = self.kernel.sim
        survivor = next(
            (
                r
                for r in self.replicas
                if not r.process.exited and not r.process.quarantined
            ),
            None,
        )
        for lane in self.rb.lanes.values():
            if was_master:
                for record in lane.records:
                    if record.state() != STATE_RESULTS_READY:
                        record.poison()
                        if survivor is not None and record.waiters() > 0:
                            # Futex keys derive from the backing region,
                            # so waking through any survivor's mapping
                            # wakes waiters in every replica.
                            addr = survivor._rb_base + record.state_word_offset()
                            self.kernel.futexes.wake(
                                survivor.space, addr, 1 << 30, sim
                            )
            if index in lane.consumed:
                del lane.consumed[index]
                if lane.slaves_caught_up():
                    lane.catchup_waitq.notify_all(sim)
            lane.args_waitq.notify_all(sim)


class IpmonReplica:
    """IP-MON as loaded into one replica process."""

    def __init__(self, group: IpMonGroup, process, replica_index: int, filemap_region):
        self.group = group
        self.kernel = group.kernel
        self.process = process
        self.space = process.space
        self.replica_index = replica_index
        self.policy = group.policy
        self.filemap = FileMapView(filemap_region)
        self.epoll_map = group.remon.epoll_map
        # The replica-local virtual address the RB is mapped at. Stored
        # here only for issuing futexes at replica-local addresses; the
        # guest program never learns it (see attacks/scenarios.py).
        self._rb_base = 0
        group.replicas.append(self)
        process.ipmon_replica = self

    @property
    def is_master(self) -> bool:
        """Role is resolved against the group's *current* master index:
        a promotion (degraded mode) re-roles survivors on their next
        entry into IP-MON."""
        return self.replica_index == self.group.remon.group.master_index

    # ------------------------------------------------------------------
    # Initialization (§3.5): map the RB + file map, register with IK-B.
    # ------------------------------------------------------------------
    def map_buffers(self) -> None:
        """Map the shared RB and the read-only file map into this
        replica at randomized, hidden addresses."""
        # 24 bits of placement entropy per replica (paper §4): the RB
        # lands on one of 2^24 page-aligned slots in this replica's
        # private 64 GiB arena.
        rng_page = (
            int.from_bytes(self.kernel.random_bytes(4), "little") % (1 << 24)
        ) * C.PAGE_SIZE
        base_hint = 0x7E00_0000_0000 + rng_page + self.replica_index * (1 << 37)
        mapping = self.space.map(
            base_hint,
            self.group.rb.size,
            C.PROT_READ | C.PROT_WRITE,
            name="[ipmon-rb]",
            region=self.group.rb.region,
            shared=True,
        )
        self._rb_base = mapping.start
        self.space.map(
            None,
            len(self.filemap.region),
            C.PROT_READ,
            name="[ipmon-filemap]",
            region=self.filemap.region,
            shared=True,
        )

    def registration_preamble(self, ctx):
        """Guest-side preamble: issue the ipmon_register syscall. Runs
        inside the replica before the application's main.

        GHUMVEE arbitrates the registration (§3.5) and may veto it with
        -EPERM, in which case the replica simply runs without an active
        IP-MON (every call stays monitored)."""
        unmonitored = self.policy.unmonitored_set()
        result = yield SyscallRequest(
            "ipmon_register", (unmonitored, self._rb_base, self.entry)
        )
        if result not in (0, -E.EPERM):
            raise SecurityViolation("ipmon_register failed: %d" % result)
        return result

    @property
    def rb_base_for_tests(self) -> int:
        return self._rb_base

    def remap_rb(self) -> int:
        """Move the RB to a fresh random virtual address (the §4
        extension: IK-B periodically rewrites the replica's page tables
        so even a leaked RB pointer goes stale).

        Futex keys are derived from the backing region, so slaves blocked
        on a record's condition variable keep working across the move.
        Returns the new base address.
        """
        old = next(
            (m for m in self.space.mappings() if m.name == "[ipmon-rb]"), None
        )
        if old is not None:
            self.space.unmap(old.start, old.length)
        rng_page = (
            int.from_bytes(self.kernel.random_bytes(4), "little") % (1 << 24)
        ) * C.PAGE_SIZE
        base_hint = 0x7E00_0000_0000 + rng_page + self.replica_index * (1 << 37)
        mapping = self.space.map(
            base_hint,
            self.group.rb.size,
            C.PROT_READ | C.PROT_WRITE,
            name="[ipmon-rb]",
            region=self.group.rb.region,
            shared=True,
        )
        self._rb_base = mapping.start
        broker = getattr(self.kernel, "ikb", None)
        if broker is not None:
            registration = broker.registration_for(self.process)
            if registration is not None:
                registration.rb_base = mapping.start
        self.group.stats["rb_remaps"] = self.group.stats.get("rb_remaps", 0) + 1
        return mapping.start

    # ------------------------------------------------------------------
    # The system call entry point IK-B forwards to (steps 2-4).
    # ------------------------------------------------------------------
    def entry(self, thread, req: SyscallRequest, token: int, rb_base: int):
        costs = self.kernel.config.costs
        group = self.group
        yield Sleep(costs.ipmon_entry_ns + group._obs_ns, cpu=True)
        obs = group.obs
        if obs is not None and obs.tracer.enabled:
            obs.tracer.instant(
                "ipmon", "entry", syscall=req.name, vtid=thread.vtid,
                replica=self.replica_index, master=self.is_master,
            )
        handler = group.handlers.get(req.name)
        broker = self.kernel.ikb
        if handler is None:
            result = yield from broker.route_to_monitor(thread, req)
            return result

        # MAYBE_CHECKED: conditional-policy decision. Deterministic given
        # the (shared) file map, so every replica reaches the same verdict
        # without communicating — except under a temporal policy, whose
        # stochastic exemptions only the master decides; slaves then
        # follow the master's record (FLAG_FORWARDED) instead.
        must_monitor = handler.maybe_checked(self, req)
        temporal = self.policy.temporal
        temporal_managed = temporal is not None and self.policy.is_conditional(req.name)
        if temporal_managed:
            if self.is_master:
                if must_monitor and temporal.should_exempt(req, self.kernel.sim.now):
                    must_monitor = False
                    group.stats["temporal_exemptions"] = (
                        group.stats.get("temporal_exemptions", 0) + 1
                    )
            else:
                must_monitor = False  # decided by the master's record
        elif must_monitor:
            group.stats["forwarded_conditional"] += 1
            result = yield from broker.route_to_monitor(thread, req)
            return result

        # CALCSIZE: records that cannot fit even an empty RB lane are
        # forwarded (deterministic as well).
        blob = serialize_args(req, self.space)
        blob_bytes = blob.encode()
        yield Sleep(costs.compare_cost_ns(blob.nbytes, len(blob.items)), cpu=True)
        max_result = handler.calcsize(self, req)
        record_bytes = len(blob_bytes) + max_result
        lane = group.rb.lane(thread.vtid)
        if lane is None or not lane.fits(record_bytes):
            group.stats["forwarded_size"] += 1
            result = yield from broker.route_to_monitor(thread, req)
            return result

        if isinstance(handler, EpollCtlHandler):
            handler.observe(self, req)

        # Role dispatch. A freshly promoted master first *drains* the
        # records its dead predecessor published — it consumes them like
        # a slave, since they correspond exactly to the calls it is now
        # making — then switches to recording. A slave that observes the
        # master's death mid-wait retries as master once the promotion
        # lands on it.
        while True:
            if self.is_master:
                backlog = (
                    self.replica_index in lane.consumed
                    and lane.next_record_for(self.replica_index) is not None
                )
                if not backlog:
                    if self.replica_index in lane.consumed:
                        # Backlog drained: stop being a lane consumer so
                        # catch-up resets no longer wait on this cursor.
                        del lane.consumed[self.replica_index]
                        if lane.slaves_caught_up():
                            lane.catchup_waitq.notify_all(self.kernel.sim)
                    result = yield from self._master_path(
                        thread,
                        req,
                        token,
                        rb_base,
                        handler,
                        lane,
                        blob_bytes,
                        record_bytes,
                        must_monitor,
                    )
                    return result
            result = yield from self._slave_path(
                thread, req, token, handler, lane, blob_bytes
            )
            if result is not _RETRY_AS_MASTER:
                return result
            if not broker.has_outstanding(thread):
                # The token was revoked while we waited for the dead
                # master's results; re-issue one for the retry.
                token = broker.reissue_token(thread, req)
                group.stats["token_reissues"] += 1

    # ------------------------------------------------------------------
    # Master: log, execute, publish.
    # ------------------------------------------------------------------
    def _master_path(
        self,
        thread,
        req,
        token,
        rb_base,
        handler,
        lane,
        blob_bytes,
        record_bytes,
        must_monitor=False,
    ):
        costs = self.kernel.config.costs
        group = self.group
        broker = self.kernel.ikb

        # Wait for RB room; a full lane is reset under GHUMVEE
        # arbitration once every slave caught up (§3.2). Under a
        # DegradationPolicy the wait uses bounded exponential backoff
        # with a no-progress deadline, after which the most-lagged slave
        # is reported as stalled (and possibly quarantined).
        policy = group.remon.config.degradation
        backoff = policy.rb_backoff_initial_ns if policy is not None else 0
        waited = 0
        last_progress = min(lane.consumed.values()) if lane.consumed else 0
        obs = group.obs
        room_wait_from = self.kernel.sim.now
        while not lane.has_room(record_bytes):
            if lane.slaves_caught_up():
                yield Sleep(costs.rb_overflow_sync_ns, cpu=False)
                lane.reset(self.kernel.sim)
                group.stats["rb_resets"] += 1
                continue
            event = lane.catchup_waitq.register()
            status, _ = yield from wait_interruptible(
                thread, event, backoff if policy is not None else None
            )
            if status == "interrupted":
                lane.catchup_waitq.unregister(event)
                broker.revoke_token(thread)
                return -E.EINTR
            if status == "timeout":
                lane.catchup_waitq.unregister(event)
                group.stats["rb_backoff_retries"] += 1
                progress = min(lane.consumed.values()) if lane.consumed else 0
                if progress != last_progress:
                    # A slow-but-progressing slave resets the deadline;
                    # only a flatlined cursor counts toward the stall.
                    last_progress = progress
                    waited = 0
                else:
                    waited += backoff
                backoff = min(backoff * 2, policy.rb_backoff_max_ns)
                if waited >= policy.rb_wait_timeout_ns:
                    self._lane_stall(thread, req, lane)
                    waited = 0
                    last_progress = (
                        min(lane.consumed.values()) if lane.consumed else 0
                    )

        if obs is not None:
            obs.registry.histogram("ipmon_rb_wait_ns").observe(
                self.kernel.sim.now - room_wait_from
            )
            if obs.tracer.enabled:
                obs.tracer.instant(
                    "ipmon", "rb-publish", syscall=req.name,
                    vtid=thread.vtid, nbytes=record_bytes,
                )
        record = lane.reserve(record_bytes)
        group.rb.total_records += 1

        # Forwarded cases that slaves must learn about through the RB
        # record (FLAG_FORWARDED): pending-signal deferral (§3.8) and
        # non-exempted calls under a temporal policy (§3.4).
        if must_monitor or group.signals_pending():
            record.write_args(blob_bytes, FLAG_FORWARDED)
            lane.publish_args(self.kernel.sim)
            if must_monitor:
                group.stats["forwarded_conditional"] += 1
            else:
                group.stats["forwarded_signals"] += 1
            result = yield from broker.route_to_monitor(thread, req)
            record.write_results(result, b"")
            self._wake_record(record, costs)
            return result

        may_block = handler.may_block(self, req)
        flags = FLAG_MAY_BLOCK if may_block else 0
        record.write_args(blob_bytes, flags)
        yield Sleep(costs.rb_write_base_ns + costs.rb_copy_ns(len(blob_bytes)), cpu=True)
        lane.publish_args(self.kernel.sim)

        # Restart the call through IK-B with the token intact (step 3).
        restart = req.replace(site="ipmon", token=token)
        ok, result = yield from broker.restart_call(thread, restart)
        if not ok:
            policy = group.remon.config.degradation
            if policy is not None and policy.reissue_lost_tokens:
                # Benign token loss (DMON fault model): one re-issued,
                # still single-use token bound to the same call.
                token = broker.reissue_token(thread, req)
                group.stats["token_reissues"] += 1
                restart = req.replace(site="ipmon", token=token)
                ok, result = yield from broker.restart_call(thread, restart)
        if not ok:
            # Verification failed (cannot happen on the benign path; an
            # attack scenario may force it): fall back to the monitor.
            record.write_results(-E.EPERM, b"")
            self._wake_record(record, costs)
            result = yield from broker.route_to_monitor(thread, req)
            return result

        group.stats["unmonitored_calls"] += 1
        payload = b""
        if handler.disposition() == MASTERCALL:
            payload = handler.collect_results(self, req, result)
        record.write_results(result, payload)
        group.rb.total_bytes += record.total_bytes()
        yield Sleep(costs.rb_write_base_ns + costs.rb_copy_ns(len(payload)), cpu=True)
        self._wake_record(record, costs)
        return result

    def _wake_record(self, record, costs) -> None:
        """FUTEX_WAKE the record's condition variable — but only when a
        slave actually waits (§3.7's no-waiter optimization)."""
        if record.waiters() > 0:
            addr = self._rb_base + record.state_word_offset()
            self.kernel.futexes.wake(self.space, addr, 1 << 30, self.kernel.sim)
            # The wake syscall itself costs time; charged to the master.
            # (In the real system this is an actual futex(2) call.)
        else:
            self.group.stats["futex_wakes_skipped"] += 1

    # ------------------------------------------------------------------
    # Stall reporting (degraded mode)
    # ------------------------------------------------------------------
    def _lane_stall(self, thread, req, lane) -> None:
        """Master-side: a slave stopped consuming this lane for the full
        no-progress window. Report the most-lagged live one."""
        remon = self.group.remon
        laggard = None
        lag_seq = None
        for index, seq in lane.consumed.items():
            if seq >= lane.master_seq:
                continue
            if index >= len(remon.group.processes):
                continue
            process = remon.group.processes[index]
            if process.exited or process.quarantined or process is self.process:
                continue
            if lag_seq is None or seq < lag_seq:
                laggard, lag_seq = process, seq
        if laggard is None:
            return
        remon.replica_fault(
            laggard,
            DivergenceReport(
                self.kernel.sim.now,
                thread.vtid,
                req.name,
                "replica %s stopped consuming RB lane %d (consumed %d of "
                "%d records)" % (laggard.name, lane.vtid, lag_seq, lane.master_seq),
                detected_by="ipmon",
                kind="stall",
            ),
        )

    def _master_stall(self, thread, req, lane) -> None:
        """Slave-side: the master stopped publishing (or finishing) this
        lane's records for the full no-progress window."""
        remon = self.group.remon
        master = remon.group.master()
        if master is self.process or master.exited or master.quarantined:
            return
        remon.replica_fault(
            master,
            DivergenceReport(
                self.kernel.sim.now,
                thread.vtid,
                req.name,
                "master %s stopped publishing records on RB lane %d"
                % (master.name, lane.vtid),
                detected_by="ipmon",
                kind="stall",
            ),
        )

    # ------------------------------------------------------------------
    # Slave: validate, wait, copy.
    # ------------------------------------------------------------------
    def _slave_path(self, thread, req, token, handler, lane, blob_bytes):
        costs = self.kernel.config.costs
        group = self.group
        broker = self.kernel.ikb

        # Locate this replica's next record, waiting for the master to
        # publish it if necessary. Under a DegradationPolicy the wait
        # backs off exponentially and eventually reports the master as
        # stalled; a promotion observed mid-wait re-roles this replica.
        group.rb.attach_slave_to_lane(lane, self.replica_index)
        policy = group.remon.config.degradation
        backoff = policy.rb_backoff_initial_ns if policy is not None else 0
        waited = 0
        while True:
            if self.is_master and lane.next_record_for(self.replica_index) is None:
                # Promoted while waiting, and no backlog left to drain.
                return _RETRY_AS_MASTER
            record = lane.next_record_for(self.replica_index)
            if record is not None and record.state() >= 1:
                break
            event = lane.args_waitq.register()
            status, _ = yield from wait_interruptible(
                thread, event, backoff if policy is not None else None
            )
            if status == "interrupted":
                lane.args_waitq.unregister(event)
                broker.revoke_token(thread)
                return -E.EINTR
            if status == "timeout":
                lane.args_waitq.unregister(event)
                group.stats["rb_backoff_retries"] += 1
                waited += backoff
                backoff = min(backoff * 2, policy.rb_backoff_max_ns)
                if waited >= policy.rb_wait_timeout_ns:
                    self._master_stall(thread, req, lane)
                    waited = 0

        state = record.state()
        flags = record.flags()
        if state not in (STATE_ARGS_READY, STATE_RESULTS_READY) or flags & ~(
            FLAG_MAY_BLOCK | FLAG_FORWARDED
        ):
            # Header words IP-MON never writes: only RB tampering (a
            # leaked pointer, §4) produces them. Same verdict as an
            # argument mismatch.
            lane.consume(self.replica_index, self.kernel.sim)
            broker.revoke_token(thread)
            self.group.remon.divergence(
                DivergenceReport(
                    self.kernel.sim.now,
                    thread.vtid,
                    req.name,
                    "RB record %d header corrupted (state=0x%x flags=0x%x)"
                    % (record.seq, state, flags),
                    detected_by="ipmon",
                )
            )
            return -E.EPERM  # unreachable in practice: remon kills us
        if flags & FLAG_FORWARDED:
            # Master forwarded this call to GHUMVEE (or the record was
            # poisoned when a dying master was quarantined mid-call); do
            # the same so the lockstep rendezvous completes. Checked
            # *before* the argument compare: poisoned records carry no
            # argument blob, and the rendezvous' own deep compare still
            # protects against an attacker-flipped FORWARDED flag.
            lane.consume(self.replica_index, self.kernel.sim)
            result = yield from broker.route_to_monitor(thread, req)
            return result

        # Sanity check: compare our own arguments against the master's
        # recorded deep copy (§3: minimizes asymmetrical attacks).
        master_blob = record.read_args()
        yield Sleep(
            costs.rb_read_base_ns + costs.compare_cost_ns(len(master_blob)), cpu=True
        )
        if master_blob != blob_bytes:
            # Intentional crash: signals GHUMVEE through ptrace and shuts
            # the MVEE down (paper §3.3).
            lane.consume(self.replica_index, self.kernel.sim)
            broker.revoke_token(thread)
            self.group.remon.ipmon_divergence(
                thread, req, master_blob, blob_bytes
            )
            return -E.EPERM  # unreachable in practice: remon kills us

        if handler.disposition() == ALLCALL:
            # Execute our own call (process-local effect) with our token.
            restart = req.replace(site="ipmon", token=token)
            ok, result = yield from broker.restart_call(thread, restart)
            if not ok:
                if policy is not None and policy.reissue_lost_tokens:
                    token = broker.reissue_token(thread, req)
                    group.stats["token_reissues"] += 1
                    ok, result = yield from broker.restart_call(
                        thread, req.replace(site="ipmon", token=token)
                    )
            if not ok:
                result = yield from broker.route_to_monitor(thread, req)
            lane.consume(self.replica_index, self.kernel.sim)
            return result

        # MASTERCALL: abort our own call, wait for the master's results.
        broker.revoke_token(thread)
        interrupted = yield from self._await_results(thread, req, record, flags, costs)
        if interrupted:
            lane.consume(self.replica_index, self.kernel.sim)
            return -E.EINTR
        if record.flags() & FLAG_FORWARDED and not flags & FLAG_FORWARDED:
            # The record was poisoned while we waited (master quarantined
            # mid-call): forward to the rendezvous like everyone else.
            lane.consume(self.replica_index, self.kernel.sim)
            result = yield from broker.route_to_monitor(thread, req)
            return result
        result, payload = record.read_results()
        yield Sleep(costs.rb_read_base_ns + costs.rb_copy_ns(len(payload)), cpu=True)
        handler.apply_results(self, req, result, payload)
        lane.consume(self.replica_index, self.kernel.sim)
        return result

    def _await_results(self, thread, req, record, flags, costs):
        """Wait for RESULTS_READY: spin for non-blocking calls, futex for
        blocking ones (§3.7). Returns True if interrupted by a signal.

        A stall deadline applies only to records *without* MAY_BLOCK: a
        master legitimately parked in epoll_wait or accept may take
        arbitrarily long, so its death mid-blocking-call is covered by
        record poisoning plus an explicit futex wake instead.
        """
        spins = 0
        group = self.group
        policy = group.remon.config.degradation
        may_block = bool(flags & FLAG_MAY_BLOCK)
        use_futex = may_block and not group.force_spin
        backoff = policy.rb_backoff_initial_ns if policy is not None else 0
        waited = 0
        while True:
            state = record.state()
            if state == STATE_RESULTS_READY:
                return False
            if state != STATE_ARGS_READY and state != 0:
                # Tampered mid-wait (see the header check in
                # _slave_path): corruption is divergence.
                self.group.remon.divergence(
                    DivergenceReport(
                        self.kernel.sim.now,
                        thread.vtid,
                        req.name,
                        "RB record %d state word corrupted (0x%x)"
                        % (record.seq, state),
                        detected_by="ipmon",
                    )
                )
                return True
            if not use_futex:
                yield Sleep(costs.spin_read_ns, cpu=True)
                spins += 1
                group.stats["spin_iterations"] += 1
                if spins >= SPIN_LIMIT and not group.force_spin:
                    use_futex = True
                    group.stats["spin_fallbacks"] += 1
                continue
            group.stats["futex_waits"] += 1
            record.add_waiter(+1)
            addr = self._rb_base + record.state_word_offset()
            timeout = backoff if (policy is not None and not may_block) else None
            result = yield from self.kernel.futexes.wait(
                self.kernel, thread, self.space, addr, record.state(), timeout
            )
            record.add_waiter(-1)
            if result == -E.EINTR:
                return True
            if result == -E.ETIMEDOUT:
                group.stats["rb_backoff_retries"] += 1
                waited += backoff
                backoff = min(backoff * 2, policy.rb_backoff_max_ns)
                if waited >= policy.rb_wait_timeout_ns:
                    self._master_stall(thread, req, record.lane)
                    waited = 0
                continue
            yield Sleep(costs.futex_wait_ns, cpu=False)
        return False
