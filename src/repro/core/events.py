"""Records the MVEE produces: divergences, shutdowns, run results."""

from __future__ import annotations

from typing import Dict, List, Optional


class DivergenceReport:
    """A detected behavioural divergence between replicas."""

    def __init__(
        self,
        time_ns: int,
        vtid: int,
        syscall: str,
        detail: str,
        detected_by: str,
        replica_args: Optional[list] = None,
        kind: str = "mismatch",
        replica: Optional[int] = None,
    ):
        self.time_ns = time_ns
        self.vtid = vtid
        self.syscall = syscall
        self.detail = detail
        #: "ghumvee" (lockstep comparison), "ipmon" (slave PRECALL check),
        #: "exit" (a replica died while others ran on), "sequence"
        #: (replicas issued different syscalls).
        self.detected_by = detected_by
        self.replica_args = replica_args or []
        #: Fault taxonomy for the DegradationPolicy: "mismatch" (always a
        #: security event), "crash" (a replica died), "stall" (a replica
        #: stopped participating). Only non-mismatch kinds may be
        #: classified benign and absorbed by quarantining.
        self.kind = kind
        #: Index of the replica whose behaviour deviated from the
        #: reference, when the detector could attribute it (None when
        #: only a quorum-level disagreement is known).
        self.replica = replica

    def __repr__(self):
        return "DivergenceReport(t=%d, vtid=%d, %s via %s: %s)" % (
            self.time_ns,
            self.vtid,
            self.syscall,
            self.detected_by,
            self.detail,
        )


class MveeResult:
    """Outcome of one MVEE run."""

    def __init__(self):
        self.exit_codes: List[Optional[int]] = []
        self.divergence: Optional[DivergenceReport] = None
        self.shutdown_reason: str = ""
        self.wall_time_ns: int = 0
        self.monitored_calls: int = 0
        self.unmonitored_calls: int = 0
        self.rb_resets: int = 0
        self.deferred_signals: int = 0
        self.stats: Dict[str, int] = {}
        #: Benign faults the MVEE absorbed in degraded mode (one report
        #: per quarantined replica); never populated on fail-stop paths.
        self.fault_events: List[DivergenceReport] = []
        #: Replica indexes quarantined during the run, in order.
        self.quarantined_replicas: List[int] = []
        #: Flight-recorder postmortems (repro.obs), one per divergence
        #: or quarantine; empty unless ObsConfig.flight_recorder is on.
        self.postmortems: List = []

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    @property
    def postmortem(self):
        """The first postmortem, or None."""
        return self.postmortems[0] if self.postmortems else None

    def syscall_total(self) -> int:
        return self.monitored_calls + self.unmonitored_calls

    def __repr__(self):
        status = "DIVERGED" if self.diverged else "ok"
        return (
            "MveeResult(%s, t=%d ns, monitored=%d, unmonitored=%d)"
            % (status, self.wall_time_ns, self.monitored_calls, self.unmonitored_calls)
        )
