"""ReMon: the public entry point wiring all components together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.epoll_map import EpollShadowMap
from repro.core.events import DivergenceReport, MveeResult
from repro.core.fdtable import MonitorFdTable
from repro.core.ghumvee import Ghumvee
from repro.core.ikb import InKernelBroker
from repro.core.ipmon import IpMonGroup, IpmonReplica
from repro.core.policies import Level, RelaxationPolicy
from repro.core.rr_agent import RecordReplayAgent
from repro.diversity.aslr import make_layouts
from repro.errors import MonitorError
from repro.guest.program import Program
from repro.guest.runtime import GuestRuntime


class ReplicaGroup:
    """The ordered set of replica processes (index 0 = master)."""

    def __init__(self):
        self.processes: List = []

    def add(self, process) -> None:
        process.replica_index = len(self.processes)
        self.processes.append(process)

    def index_of(self, process) -> int:
        return getattr(process, "replica_index", 0)

    def master(self):
        return self.processes[0]

    def all_exited(self) -> bool:
        return all(process.exited for process in self.processes)

    def __len__(self):
        return len(self.processes)


@dataclass
class ReMonConfig:
    """Configuration for one MVEE instance."""

    replicas: int = 2
    level: Level = Level.NONSOCKET_RW
    rb_size: int = 16 << 20
    aslr: bool = True
    dcl: bool = True
    allow_shared_memory: bool = False
    use_rr_agent: bool = True
    temporal: Optional[object] = None  # a TemporalPolicy, if any
    #: Ablation knob (§3.7): disable futex condvars, slaves always spin.
    ipmon_force_spin: bool = False
    #: §4 extension: IK-B periodically moves the RB to a fresh virtual
    #: address in every replica (None = disabled).
    rb_remap_interval_ns: Optional[int] = None
    #: §3.5: GHUMVEE arbitrates IP-MON registration and "can potentially
    #: prevent the registration altogether". When False, registrations
    #: are vetoed and the MVEE runs CP-only despite the relaxed level.
    allow_ipmon_registration: bool = True
    seed: int = 0

    def policy(self) -> RelaxationPolicy:
        return RelaxationPolicy(self.level, temporal=self.temporal)


class ReMon:
    """A configured MVEE supervising N replicas of one program.

    Typical use::

        kernel = Kernel()
        mvee = ReMon(kernel, program, ReMonConfig(replicas=2))
        result = mvee.run()
    """

    def __init__(self, kernel, program: Program, config: Optional[ReMonConfig] = None):
        self.kernel = kernel
        self.program = program
        self.config = config or ReMonConfig()
        if self.config.replicas < 1:
            raise MonitorError("an MVEE needs at least one replica")
        self.policy = self.config.policy()
        self.group = ReplicaGroup()
        self.fd_metadata = MonitorFdTable()
        self.epoll_map = EpollShadowMap(self.config.replicas)
        self.result = MveeResult()
        self.shutting_down = False
        #: Exceptions from monitor coroutines; surfaced by finalize().
        self.monitor_failures: List[BaseException] = []
        self.layouts = make_layouts(
            self.config.replicas,
            seed=self.config.seed,
            aslr=self.config.aslr,
            dcl=self.config.dcl,
        )
        self._runtimes: List[GuestRuntime] = []
        self._started = False
        self.master_exit_ns: Optional[int] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        kernel = self.kernel
        self.program.install_files(kernel)
        pressure = kernel.config.costs.memory_pressure_per_replica
        sensitivity = getattr(self.program, "cache_sensitivity", 1.0)
        factor = 1.0 + pressure * (self.config.replicas - 1) * sensitivity
        for layout in self.layouts:
            process = kernel.create_process(
                "%s.r%d" % (self.program.name, layout.index),
                mmap_base=layout.mmap_base,
                brk_base=layout.brk_base,
            )
            process.compute_factor = factor
            self.group.add(process)

        # Cross-process monitor.
        self.ghumvee = Ghumvee(self)
        self.ghumvee.attach_all()

        # Kernel broker (shared per kernel).
        self.broker = getattr(kernel, "ikb", None)
        if self.broker is None:
            self.broker = InKernelBroker(kernel)
            kernel.syscall_hooks.append(self.broker)

        # In-process monitor, unless the policy disables it.
        self.ipmon: Optional[IpMonGroup] = None
        if self.config.level != Level.NO_IPMON:
            self.ipmon = IpMonGroup(
                self,
                self.policy,
                self.config.rb_size,
                force_spin=self.config.ipmon_force_spin,
            )
            for process, layout in zip(self.group.processes, self.layouts):
                replica = IpmonReplica(
                    self.ipmon,
                    process,
                    layout.index,
                    self.fd_metadata.region,
                )
                replica.map_buffers()

        # Record/replay agent for user-space synchronization.
        self.rr_agent = (
            RecordReplayAgent(kernel, self.config.replicas)
            if self.config.use_rr_agent and self.config.replicas > 1
            else None
        )

        for process, layout in zip(self.group.processes, self.layouts):
            if self.rr_agent is not None:
                agent = self.rr_agent

                def hook(ctx, _agent=agent):
                    ctx.rr_agent = _agent

                process.ctx_hook = hook
            runtime = GuestRuntime(
                kernel, process, self._wrapped_program(), layout=layout
            )
            self._runtimes.append(runtime)

    def _wrapped_program(self) -> Program:
        base = self.program
        ipmon_enabled = self.ipmon is not None

        def main(ctx):
            if ipmon_enabled:
                yield from ctx.process.ipmon_replica.registration_preamble(ctx)
            result = yield from base.main(ctx)
            return result

        return Program(base.name, main, seed=base.seed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for runtime in self._runtimes:
            runtime.start()
        interval = self.config.rb_remap_interval_ns
        if interval and self.ipmon is not None:
            self.kernel.sim.spawn(self._rb_remap_loop(interval), name="ikb-remap")

    def _rb_remap_loop(self, interval_ns: int):
        from repro.sim import Sleep

        while not self.shutting_down and not self.group.all_exited():
            yield Sleep(interval_ns)
            if self.shutting_down or self.group.all_exited():
                return
            for replica in self.ipmon.replicas:
                if not replica.process.exited:
                    replica.remap_rb()

    def run(self, until: Optional[int] = None, max_steps: Optional[int] = None) -> MveeResult:
        self.start()
        self.kernel.sim.run(until=until, max_steps=max_steps)
        return self.finalize()

    def finalize(self) -> MveeResult:
        if self.monitor_failures:
            raise self.monitor_failures[0]
        for process in self.group.processes:
            for thread in process.threads.values():
                task = thread.task
                if task is not None and task.failure is not None:
                    raise task.failure
        result = self.result
        result.exit_codes = [p.exit_code for p in self.group.processes]
        result.wall_time_ns = (
            self.master_exit_ns
            if self.master_exit_ns is not None
            else self.kernel.sim.now
        )
        result.monitored_calls = self.ghumvee.stats["monitored_calls"]
        if self.ipmon is not None:
            result.unmonitored_calls = self.ipmon.stats["unmonitored_calls"]
            result.rb_resets = self.ipmon.stats["rb_resets"]
        result.deferred_signals = self.ghumvee.stats["signals_deferred"]
        result.stats = dict(self.ghumvee.stats)
        result.stats.update(("broker_" + k, v) for k, v in self.broker.stats.items())
        if self.ipmon is not None:
            result.stats.update(("ipmon_" + k, v) for k, v in self.ipmon.stats.items())
        if self.rr_agent is not None:
            result.stats.update(("rr_" + k, v) for k, v in self.rr_agent.stats.items())
        return result

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def divergence(self, report: DivergenceReport) -> None:
        if self.shutting_down or self.result.divergence is not None:
            return
        self.result.divergence = report
        # Detection is not teardown: the monitor must wake up and kill
        # the replicas, which takes a ptrace round trip. Monitored calls
        # stop being serviced immediately (GHUMVEE parks all stops once
        # a divergence is flagged), but an unmonitored call already in
        # flight can still complete — the §4 run-ahead window.
        delay = self.kernel.config.costs.ptrace_roundtrip_ns()
        reason = "divergence: %s" % report.detail
        self.kernel.sim.call_at(
            self.kernel.sim.now + delay, self.shutdown, reason
        )

    def ipmon_divergence(self, thread, req, master_blob, own_blob) -> None:
        report = DivergenceReport(
            self.kernel.sim.now,
            thread.vtid,
            req.name,
            "slave argument record differs from master's (%d vs %d bytes)"
            % (len(own_blob), len(master_blob)),
            detected_by="ipmon",
        )
        self.divergence(report)

    def shutdown(self, reason: str) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        self.result.shutdown_reason = reason
        for process in self.group.processes:
            if not process.exited:
                self.kernel.terminate_process(process, 137, signo=9)

    def on_replica_thread_exit(self, stop) -> None:
        process = stop.thread.process
        if process.exited:
            if self.group.index_of(process) == 0 and self.master_exit_ns is None:
                self.master_exit_ns = self.kernel.sim.now
            # A replica that dies while the others run on — and not as
            # part of an agreed exit_group — is a divergence: diversity
            # turned the attack into an observable crash (§4).
            if (
                not self.shutting_down
                and not self.ghumvee.group_exiting
                and not self.group.all_exited()
            ):
                self.divergence(
                    DivergenceReport(
                        self.kernel.sim.now,
                        stop.thread.vtid,
                        stop.req.name if stop.req else "",
                        "replica %s terminated unexpectedly (sig=%d)"
                        % (process.name, stop.signo),
                        detected_by="exit",
                    )
                )
        if self.group.all_exited() and not self.result.shutdown_reason:
            self.result.shutdown_reason = "all replicas exited"

    # ------------------------------------------------------------------
    @property
    def diverged(self) -> bool:
        return self.result.diverged
