"""ReMon: the public entry point wiring all components together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.epoll_map import EpollShadowMap
from repro.core.events import DivergenceReport, MveeResult
from repro.core.fdtable import MonitorFdTable
from repro.core.ghumvee import Ghumvee
from repro.core.ikb import InKernelBroker
from repro.core.ipmon import IpMonGroup, IpmonReplica
from repro.core.policies import DegradationPolicy, Level, RelaxationPolicy
from repro.core.rr_agent import RecordReplayAgent
from repro.diversity.aslr import make_layouts
from repro.errors import MonitorError
from repro.guest.program import Program
from repro.guest.runtime import GuestRuntime
from repro.obs import Obs


class ReplicaGroup:
    """The ordered set of replica processes (index 0 starts as master;
    a DegradationPolicy may promote a survivor when the master dies)."""

    def __init__(self):
        self.processes: List = []
        self.master_index = 0

    def add(self, process) -> None:
        process.replica_index = len(self.processes)
        self.processes.append(process)

    def index_of(self, process) -> int:
        return getattr(process, "replica_index", 0)

    def master(self):
        return self.processes[self.master_index]

    def survivors(self):
        return [
            p
            for p in self.processes
            if not p.exited and not getattr(p, "quarantined", False)
        ]

    def all_exited(self) -> bool:
        return all(process.exited for process in self.processes)

    def __len__(self):
        return len(self.processes)


@dataclass
class ReMonConfig:
    """Configuration for one MVEE instance."""

    replicas: int = 2
    level: Level = Level.NONSOCKET_RW
    rb_size: int = 16 << 20
    aslr: bool = True
    dcl: bool = True
    allow_shared_memory: bool = False
    use_rr_agent: bool = True
    temporal: Optional[object] = None  # a TemporalPolicy, if any
    #: Ablation knob (§3.7): disable futex condvars, slaves always spin.
    ipmon_force_spin: bool = False
    #: §4 extension: IK-B periodically moves the RB to a fresh virtual
    #: address in every replica (None = disabled).
    rb_remap_interval_ns: Optional[int] = None
    #: §3.5: GHUMVEE arbitrates IP-MON registration and "can potentially
    #: prevent the registration altogether". When False, registrations
    #: are vetoed and the MVEE runs CP-only despite the relaxed level.
    allow_ipmon_registration: bool = True
    #: Graceful degradation (None = classic ReMon: every replica anomaly
    #: fail-stops the MVEE). See :class:`DegradationPolicy`.
    degradation: Optional[DegradationPolicy] = None
    #: Distributed execution (None = classic single-machine ReMon). When
    #: set to a :class:`repro.dist.DistConfig`, replicas run on separate
    #: simulated nodes; use :func:`repro.dist.run_distributed` or
    #: :class:`repro.dist.DistMvee` to drive such a config.
    dist: Optional[object] = None
    #: Observability (repro.obs). None = metrics-only defaults: the
    #: registry still serves RunResult.stats, but spans and the flight
    #: recorder stay off and add zero virtual time.
    obs: Optional[object] = None
    seed: int = 0

    def policy(self) -> RelaxationPolicy:
        return RelaxationPolicy(self.level, temporal=self.temporal)


class ReMon:
    """A configured MVEE supervising N replicas of one program.

    Typical use::

        kernel = Kernel()
        mvee = ReMon(kernel, program, ReMonConfig(replicas=2))
        result = mvee.run()
    """

    def __init__(self, kernel, program: Program, config: Optional[ReMonConfig] = None):
        self.kernel = kernel
        self.program = program
        self.config = config or ReMonConfig()
        if self.config.replicas < 1:
            raise MonitorError("an MVEE needs at least one replica")
        self.policy = self.config.policy()
        self.group = ReplicaGroup()
        self.fd_metadata = MonitorFdTable()
        self.epoll_map = EpollShadowMap(self.config.replicas)
        self.result = MveeResult()
        self.shutting_down = False
        #: Exceptions from monitor coroutines; surfaced by finalize().
        self.monitor_failures: List[BaseException] = []
        self.degradation_stats = {
            "replicas_quarantined": 0,
            "master_promotions": 0,
        }
        self.layouts = make_layouts(
            self.config.replicas,
            seed=self.config.seed,
            aslr=self.config.aslr,
            dcl=self.config.dcl,
        )
        self._runtimes: List[GuestRuntime] = []
        self._started = False
        self.master_exit_ns: Optional[int] = None
        self.obs = Obs.create(self.config.obs, kernel.sim)
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        kernel = self.kernel
        kernel.attach_obs(self.obs)
        if self.obs.tracer.enabled and kernel.sim.trace_sink is None:
            kernel.sim.trace_sink = self.obs.tracer
        self.program.install_files(kernel)
        pressure = kernel.config.costs.memory_pressure_per_replica
        sensitivity = getattr(self.program, "cache_sensitivity", 1.0)
        factor = 1.0 + pressure * (self.config.replicas - 1) * sensitivity
        for layout in self.layouts:
            process = kernel.create_process(
                "%s.r%d" % (self.program.name, layout.index),
                mmap_base=layout.mmap_base,
                brk_base=layout.brk_base,
            )
            process.compute_factor = factor
            self.group.add(process)

        # Cross-process monitor.
        self.ghumvee = Ghumvee(self)
        self.ghumvee.attach_all()

        # Kernel broker (shared per kernel).
        self.broker = getattr(kernel, "ikb", None)
        if self.broker is None:
            self.broker = InKernelBroker(kernel)
            kernel.syscall_hooks.append(self.broker)

        # In-process monitor, unless the policy disables it.
        self.ipmon: Optional[IpMonGroup] = None
        if self.config.level != Level.NO_IPMON:
            self.ipmon = IpMonGroup(
                self,
                self.policy,
                self.config.rb_size,
                force_spin=self.config.ipmon_force_spin,
            )
            for process, layout in zip(self.group.processes, self.layouts):
                replica = IpmonReplica(
                    self.ipmon,
                    process,
                    layout.index,
                    self.fd_metadata.region,
                )
                replica.map_buffers()

        # Record/replay agent for user-space synchronization.
        self.rr_agent = (
            RecordReplayAgent(kernel, self.config.replicas)
            if self.config.use_rr_agent and self.config.replicas > 1
            else None
        )

        for process, layout in zip(self.group.processes, self.layouts):
            if self.rr_agent is not None:
                agent = self.rr_agent

                def hook(ctx, _agent=agent):
                    ctx.rr_agent = _agent

                process.ctx_hook = hook
            runtime = GuestRuntime(
                kernel, process, self._wrapped_program(), layout=layout
            )
            self._runtimes.append(runtime)

        # Fault injection (repro.faults): let an installed injector
        # resolve replica indexes to this group's processes.
        injector = getattr(kernel, "fault_injector", None)
        if injector is not None:
            injector.bind_mvee(self)

    def _wrapped_program(self) -> Program:
        base = self.program
        ipmon_enabled = self.ipmon is not None

        def main(ctx):
            if ipmon_enabled:
                yield from ctx.process.ipmon_replica.registration_preamble(ctx)
            result = yield from base.main(ctx)
            return result

        return Program(base.name, main, seed=base.seed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for runtime in self._runtimes:
            runtime.start()
        interval = self.config.rb_remap_interval_ns
        if interval and self.ipmon is not None:
            self.kernel.sim.spawn(self._rb_remap_loop(interval), name="ikb-remap")

    def _rb_remap_loop(self, interval_ns: int):
        from repro.sim import Sleep

        while not self.shutting_down and not self.group.all_exited():
            yield Sleep(interval_ns)
            if self.shutting_down or self.group.all_exited():
                return
            for replica in self.ipmon.replicas:
                if not replica.process.exited:
                    replica.remap_rb()

    def run(self, until: Optional[int] = None, max_steps: Optional[int] = None) -> MveeResult:
        self.start()
        self.kernel.sim.run(until=until, max_steps=max_steps)
        return self.finalize()

    def finalize(self) -> MveeResult:
        if self.monitor_failures:
            primary = self.monitor_failures[0]
            # Surface every other monitor failure on the raised error so
            # a cascade (e.g. two replicas' monitors dying in one event)
            # is not silently reduced to its first symptom.
            if hasattr(primary, "add_note"):
                for extra in self.monitor_failures[1:]:
                    primary.add_note(
                        "additional monitor failure: %r" % (extra,)
                    )
            raise primary
        for process in self.group.processes:
            if process.quarantined:
                # A quarantined replica was killed mid-flight by design;
                # whatever its guest task raised *is* the absorbed fault.
                continue
            for thread in process.threads.values():
                task = thread.task
                if task is not None and task.failure is not None:
                    raise task.failure
        result = self.result
        result.exit_codes = [p.exit_code for p in self.group.processes]
        result.wall_time_ns = (
            self.master_exit_ns
            if self.master_exit_ns is not None
            else self.kernel.sim.now
        )
        result.monitored_calls = self.ghumvee.stats["monitored_calls"]
        if self.ipmon is not None:
            result.unmonitored_calls = self.ipmon.stats["unmonitored_calls"]
            result.rb_resets = self.ipmon.stats["rb_resets"]
        result.deferred_signals = self.ghumvee.stats["signals_deferred"]
        # All component stats flow through the obs registry adapter; the
        # view it renders is byte-identical to the old hand-prefixed
        # merge (ingest is idempotent, so finalize may run twice).
        registry = self.obs.registry
        registry.ingest("", self.ghumvee.stats, source="ghumvee")
        registry.ingest("broker_", self.broker.stats, source="broker")
        if self.ipmon is not None:
            registry.ingest("ipmon_", self.ipmon.stats, source="ipmon")
        if self.rr_agent is not None:
            registry.ingest("rr_", self.rr_agent.stats, source="rr")
        injector = getattr(self.kernel, "fault_injector", None)
        registry.expose(
            "faults_injected",
            injector.total_injected if injector is not None else 0,
        )
        registry.expose(
            "replicas_quarantined",
            self.degradation_stats["replicas_quarantined"],
        )
        registry.expose(
            "master_promotions", self.degradation_stats["master_promotions"]
        )
        registry.expose(
            "rb_backoff_retries",
            self.ipmon.stats.get("rb_backoff_retries", 0)
            if self.ipmon is not None
            else 0,
        )
        result.stats = registry.stats_view()
        self.obs.export_files(result.postmortems)
        return result

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _record_postmortem(self, reason: str, report: DivergenceReport) -> None:
        """Snapshot the flight recorder (if enabled) into the result."""
        ipmon = self.ipmon
        postmortem = self.obs.emit_postmortem(
            reason,
            report,
            attribution={
                "vtid": report.vtid,
                "replica": report.replica,
                "master_index": self.group.master_index,
                "quarantined": list(self.result.quarantined_replicas),
            },
            backoff={
                "rendezvous_backoff_retries": self.ghumvee.stats[
                    "rendezvous_backoff_retries"
                ],
                "rb_backoff_retries": (
                    ipmon.stats.get("rb_backoff_retries", 0)
                    if ipmon is not None
                    else 0
                ),
                "rb_resets": (
                    ipmon.stats.get("rb_resets", 0) if ipmon is not None else 0
                ),
            },
        )
        if postmortem is not None:
            self.result.postmortems.append(postmortem)

    def divergence(self, report: DivergenceReport) -> None:
        if self.shutting_down or self.result.divergence is not None:
            return
        self.result.divergence = report
        self._record_postmortem("divergence", report)
        if self.group.all_exited():
            # Nothing left to kill, and the simulator clock may already
            # have stopped advancing — scheduling a delayed shutdown
            # would either be a no-op or raise for being in the past.
            if not self.result.shutdown_reason:
                self.result.shutdown_reason = "divergence: %s" % report.detail
            return
        # Detection is not teardown: the monitor must wake up and kill
        # the replicas, which takes a ptrace round trip. Monitored calls
        # stop being serviced immediately (GHUMVEE parks all stops once
        # a divergence is flagged), but an unmonitored call already in
        # flight can still complete — the §4 run-ahead window.
        delay = self.kernel.config.costs.ptrace_roundtrip_ns()
        reason = "divergence: %s" % report.detail
        self.kernel.sim.call_at(
            self.kernel.sim.now + delay, self.shutdown, reason
        )

    def ipmon_divergence(self, thread, req, master_blob, own_blob) -> None:
        report = DivergenceReport(
            self.kernel.sim.now,
            thread.vtid,
            req.name,
            "slave argument record differs from master's (%d vs %d bytes)"
            % (len(own_blob), len(master_blob)),
            detected_by="ipmon",
            replica_args=[master_blob, own_blob],
            replica=getattr(thread.process, "replica_index", None),
        )
        self.divergence(report)

    def shutdown(self, reason: str) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        self.result.shutdown_reason = reason
        for process in self.group.processes:
            if not process.exited:
                self.kernel.terminate_process(process, 137, signo=9)

    # ------------------------------------------------------------------
    # Graceful degradation (config.degradation)
    # ------------------------------------------------------------------
    def _survivors_excluding(self, process) -> List:
        return [
            p
            for p in self.group.processes
            if p is not process and not p.exited and not p.quarantined
        ]

    def crash_would_degrade(self, process) -> bool:
        """Would this replica's death be absorbed (quarantined) rather
        than fail-stop the MVEE? GHUMVEE consults this before tearing
        down lockstep state for a dying replica, so that the quarantine
        path can shrink the rendezvous quorum in a controlled way."""
        policy = self.config.degradation
        if policy is None or self.shutting_down or self.diverged:
            return False
        if process.quarantined:
            return True
        if policy.classify_kind("crash") != "benign":
            return False
        if (
            self.group.index_of(process) == self.group.master_index
            and not policy.promote_master
        ):
            return False
        return len(self._survivors_excluding(process)) >= policy.min_quorum

    def replica_fault(self, process, report: DivergenceReport) -> None:
        """A replica crashed or stalled. Quarantine it when the policy
        classifies the fault benign and quorum holds; otherwise take the
        classic fail-stop path via :meth:`divergence`."""
        if self.shutting_down or self.diverged or process.quarantined:
            return
        policy = self.config.degradation
        if policy is None or policy.classify(report) != "benign":
            self.divergence(report)
            return
        survivors = self._survivors_excluding(process)
        if len(survivors) < policy.min_quorum:
            report.detail += " [quorum lost: %d survivors < min_quorum %d]" % (
                len(survivors),
                policy.min_quorum,
            )
            self.divergence(report)
            return
        self.quarantine(process, report)

    def quarantine(self, process, report: DivergenceReport) -> None:
        """Remove one replica from the group and continue with N−1:
        detach it from ptrace, release its RB lanes and lockstep slots,
        shrink the rendezvous quorum, and promote a new master when the
        master is the one lost (paper's fail-stop policy relaxed to a
        quorum rule; every *mismatch* still fail-stops)."""
        index = self.group.index_of(process)
        was_master = index == self.group.master_index
        policy = self.config.degradation
        if was_master and (policy is None or not policy.promote_master):
            self.divergence(report)
            return
        process.quarantined = True
        self.result.fault_events.append(report)
        if report.replica is None:
            report.replica = index
        self.result.quarantined_replicas.append(index)
        self.degradation_stats["replicas_quarantined"] += 1
        self._record_postmortem("quarantine", report)
        # Promotion must precede termination: fd migration reads the
        # dying master's still-intact descriptor table.
        if was_master:
            self._promote_master(index)
        if not process.exited:
            self.kernel.terminate_process(process, 137, signo=9)
        self.ghumvee.on_replica_quarantined(index, was_master)
        if self.ipmon is not None:
            self.ipmon.on_replica_quarantined(index, was_master)
        if self.rr_agent is not None:
            self.rr_agent.drop_replica(index)
        self.ghumvee.tracer.detach(process)

    def _promote_master(self, dead_index: int) -> None:
        """Re-point master-side state at the lowest surviving replica:
        real open files migrate over its shadow descriptors, the epoll
        shadow map re-keys, and the rr_agent records from it onward."""
        survivors = self.group.survivors()
        if not survivors:
            return
        new_master = survivors[0]  # processes are kept in index order
        new_index = self.group.index_of(new_master)
        old_master = self.group.processes[dead_index]
        for fd in old_master.fdtable.fds():
            entry = old_master.fdtable.get(fd)
            if entry is None or getattr(entry.ofd.file, "kind", None) == "shadow":
                continue
            target = new_master.fdtable.get(fd)
            if target is not None and getattr(target.ofd.file, "kind", None) != "shadow":
                continue  # the survivor already owns a real file here
            new_master.fdtable.install(fd, entry.ofd, entry.cloexec)
        self.group.master_index = new_index
        self.epoll_map.promote(new_index)
        if self.rr_agent is not None:
            self.rr_agent.promote(new_index)
        self.degradation_stats["master_promotions"] += 1

    def on_replica_thread_exit(self, stop) -> None:
        process = stop.thread.process
        if process.exited:
            # A replica that dies while the others run on — and not as
            # part of an agreed exit_group — is a fault: a benign crash
            # to absorb under a DegradationPolicy, otherwise the classic
            # divergence (diversity turned the attack into an observable
            # crash, §4).
            if (
                not self.shutting_down
                and not self.ghumvee.group_exiting
                and not process.quarantined
                and not self.group.all_exited()
            ):
                self.replica_fault(
                    process,
                    DivergenceReport(
                        self.kernel.sim.now,
                        stop.thread.vtid,
                        stop.req.name if stop.req else "",
                        "replica %s terminated unexpectedly (sig=%d)"
                        % (process.name, stop.signo),
                        detected_by="exit",
                        kind="crash",
                    ),
                )
            # Checked *after* fault handling: a quarantined master hands
            # the clock to its successor instead of freezing wall time.
            if (
                self.group.index_of(process) == self.group.master_index
                and not process.quarantined
                and self.master_exit_ns is None
            ):
                self.master_exit_ns = self.kernel.sim.now
        if self.group.all_exited() and not self.result.shutdown_reason:
            self.result.shutdown_reason = "all replicas exited"

    # ------------------------------------------------------------------
    @property
    def diverged(self) -> bool:
        return self.result.diverged
