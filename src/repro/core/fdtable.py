"""GHUMVEE's descriptor metadata and the IP-MON file map (paper §3.6).

GHUMVEE arbitrates every call that creates, modifies or destroys file
descriptors, so it can maintain authoritative metadata: the type of each
descriptor (regular / pipe / socket / poll-fd / special) and whether it
is in non-blocking mode. Replicas map a read-only page of this metadata
— one byte per descriptor — which IP-MON's MAYBE_CHECKED handlers use to
apply conditional relaxation policies and to predict whether a call can
block (§3.7).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.constants import PAGE_SIZE
from repro.kernel.memory import SharedRegion

#: File-map type codes (one byte per fd; high bit = non-blocking).
TYPE_CODES = {
    "unknown": 0,
    "reg": 1,
    "dir": 2,
    "chr": 3,
    "pipe": 4,
    "sock": 5,
    "listen": 6,
    "epoll": 7,
    "timerfd": 8,
    "special": 9,
    "symlink": 1,
    "shadow": 0,
}
CODE_TO_KIND = {
    1: "reg",
    2: "dir",
    3: "chr",
    4: "pipe",
    5: "sock",
    6: "listen",
    7: "epoll",
    8: "timerfd",
    9: "special",
}
NONBLOCK_BIT = 0x80


class FdInfo:
    __slots__ = ("kind", "nonblocking", "special")

    def __init__(self, kind: str, nonblocking: bool = False, special: bool = False):
        self.kind = kind
        self.nonblocking = nonblocking
        self.special = special

    def __repr__(self):
        return "FdInfo(%s%s%s)" % (
            self.kind,
            ", nonblocking" if self.nonblocking else "",
            ", special" if self.special else "",
        )


class MonitorFdTable:
    """The monitor-side fd metadata plus its shared read-only page."""

    def __init__(self, max_fds: int = PAGE_SIZE):
        self.max_fds = max_fds
        self._info: Dict[int, FdInfo] = {}
        #: The page replicas map read-only (the actual IP-MON file map).
        self.region = SharedRegion(PAGE_SIZE, "ipmon-filemap")
        # stdio: stdin char device, stdout/stderr console.
        self.record_open(0, "chr")
        self.record_open(1, "chr")
        self.record_open(2, "chr")

    # -- monitor-side updates -------------------------------------------
    def record_open(
        self, fd: int, kind: str, nonblocking: bool = False, special: bool = False
    ) -> None:
        if fd < 0:
            return
        self._info[fd] = FdInfo(kind, nonblocking, special)
        self._write_byte(fd)

    def record_close(self, fd: int) -> None:
        self._info.pop(fd, None)
        if 0 <= fd < self.max_fds:
            self.region.data[fd] = 0

    def record_nonblocking(self, fd: int, nonblocking: bool) -> None:
        info = self._info.get(fd)
        if info is not None:
            info.nonblocking = nonblocking
            self._write_byte(fd)

    def record_dup(self, oldfd: int, newfd: int) -> None:
        info = self._info.get(oldfd)
        if info is not None:
            self.record_open(newfd, info.kind, info.nonblocking, info.special)

    def _write_byte(self, fd: int) -> None:
        if not 0 <= fd < self.max_fds:
            return
        info = self._info[fd]
        code = TYPE_CODES.get(info.kind, 0)
        if info.special:
            code = TYPE_CODES["special"]
        if info.nonblocking:
            code |= NONBLOCK_BIT
        self.region.data[fd] = code

    # -- queries -----------------------------------------------------------
    def info(self, fd: int) -> Optional[FdInfo]:
        return self._info.get(fd)

    def kind_of(self, fd: int) -> Optional[str]:
        info = self._info.get(fd)
        return info.kind if info is not None else None

    def is_nonblocking(self, fd: int) -> bool:
        info = self._info.get(fd)
        return bool(info and info.nonblocking)

    def open_fds(self):
        return sorted(self._info)


class FileMapView:
    """IP-MON's replica-side view: reads the shared metadata page.

    In the real system this is a read-only mapping in the replica's
    address space; tampering with it is impossible. Here we read the
    shared region directly (each replica maps it at its own address).
    """

    def __init__(self, region: SharedRegion):
        self.region = region

    def fd_kind(self, fd: int) -> Optional[str]:
        if not 0 <= fd < len(self.region.data):
            return None
        code = self.region.data[fd]
        return CODE_TO_KIND.get(code & ~NONBLOCK_BIT)

    def is_nonblocking(self, fd: int) -> bool:
        if not 0 <= fd < len(self.region.data):
            return False
        return bool(self.region.data[fd] & NONBLOCK_BIT)

    def may_block(self, name: str, fd: int) -> bool:
        """Predict whether a call on ``fd`` can block (paper §3.7):
        non-blocking descriptors always return immediately."""
        kind = self.fd_kind(fd)
        if kind in ("reg", "dir", "chr", None):
            return False
        return not self.is_nonblocking(fd)
