"""Layout-independent canonical serialization (DESIGN.md §13).

Heterogeneous clusters give every node its own diversity profile —
disjoint DCL arenas, private ASLR seed streams, and a divergent guest
ABI (scalar width, inter-field padding) that changes how an
:class:`~repro.core.comparator.ArgBlob` encodes *in that node's guest
memory*. Raw encodings from two such nodes differ byte-for-byte even
when the replicas made the same call with the same logical arguments,
so nothing cross-node may ever hash raw bytes.

This module is the single chokepoint that fixes that. The digest
pipeline becomes::

    serialize_args()  ->  logical items     (pointers already rewritten
                                             to class+pointee form)
    encode_items(abi) ->  node-local bytes  (what lands in guest memory
                                             and is priced on the wire)
    encode_items()    ->  CANONICAL bytes   (fixed widths, zero padding)
    intern_digest()   ->  64-bit digest     (what rendezvous votes on)

``encode_items`` with default arguments *is* the canonical form, and is
byte-identical to the historical ``ArgBlob.encode()`` — a homogeneous
cluster (every node on :data:`CANONICAL_ABI`) therefore hashes exactly
the bytes it always hashed, with zero extra work on the hot path.

Pointer normalization happens one stage earlier, in
:func:`repro.core.comparator.serialize_args`: raw addresses never reach
the item list. ``ptr`` items carry NULL/non-NULL class, ``callable``
items carry the handler class, and pointees travel by content. This
module only has to normalize the *widths and padding* the per-node ABI
diversifies.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

_SCALAR_MASK = (1 << 63) - 1
_LEN = struct.Struct("<I")


class AbiProfile:
    """How one node's guest ABI lays out an argument record.

    ``scalar_width``
        Bytes per integer scalar (8 = the canonical LP64 width; a
        diversified node may zero-extend to 16, the ILP128 analogue).
    ``item_pad``
        Zero bytes of inter-field padding appended after every item's
        payload (0 = canonical packed layout).
    """

    __slots__ = ("scalar_width", "item_pad")

    def __init__(self, scalar_width: int = 8, item_pad: int = 0):
        if scalar_width < 8:
            raise ValueError("scalar_width must hold a 64-bit value")
        if item_pad < 0:
            raise ValueError("item_pad must be non-negative")
        self.scalar_width = scalar_width
        self.item_pad = item_pad

    @property
    def canonical(self) -> bool:
        return self.scalar_width == 8 and self.item_pad == 0

    def __eq__(self, other):
        return (
            isinstance(other, AbiProfile)
            and self.scalar_width == other.scalar_width
            and self.item_pad == other.item_pad
        )

    def __hash__(self):
        return hash((self.scalar_width, self.item_pad))

    def __repr__(self):
        return "AbiProfile(scalar_width=%d, item_pad=%d)" % (
            self.scalar_width,
            self.item_pad,
        )


#: The reference ABI every pre-heterogeneity run implicitly used.
CANONICAL_ABI = AbiProfile()


def encode_items(
    name: str,
    items: List[Tuple[str, object]],
    scalar_width: int = 8,
    item_pad: int = 0,
) -> bytes:
    """Encode a serialized argument record under one ABI.

    With default arguments this produces the **canonical** encoding
    (and is byte-identical to the pre-refactor ``ArgBlob.encode()``).
    The length field counts the payload *before* padding, so a decoder
    under any ABI can skip its own padding deterministically.
    """
    pad = b"\x00" * item_pad
    out = bytearray()
    out += name.encode()[:16].ljust(16, b"\x00")
    for kind, value in items:
        tag = kind.encode()[:8].ljust(8, b"\x00")
        if isinstance(value, bytes):
            payload = value
        elif isinstance(value, bool):
            payload = bytes([value])
        else:
            payload = (int(value) & _SCALAR_MASK).to_bytes(scalar_width, "little")
        out += tag + _LEN.pack(len(payload)) + payload
        if item_pad:
            out += pad
    return bytes(out)


def canonical_bytes(name: str, items: List[Tuple[str, object]]) -> bytes:
    """The layout-independent form every cross-node digest hashes."""
    return encode_items(name, items)


def encode_for(name: str, items: List[Tuple[str, object]], abi: AbiProfile) -> bytes:
    """One node's local (guest-memory) encoding of the same record."""
    return encode_items(name, items, abi.scalar_width, abi.item_pad)
