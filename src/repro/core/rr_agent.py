"""The record/replay agent for user-space synchronization (paper §2.3).

Multi-threaded replicas are non-deterministic: two threads racing on a
mutex may acquire it in different orders in different replicas, leading
to diverging system-call sequences even on identical inputs. ReMon
embeds a small agent in each replica that forces all replicas to pass
user-space synchronization points in the same order: the master records
the global order in which its threads pass them; the slaves release
their threads in exactly that order.

Guest code participates through ``ctx.sync_point(key)``, which the
guest-level mutex/condvar implementations call on every operation —
including the uncontended fast paths that never enter the kernel (the
ones VARAN cannot see, §6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.waitq import WaitQueue, wait_interruptible
from repro.sim import Sleep

#: Cost of one agent interposition (a few atomic ops in the real agent).
SYNC_POINT_COST_NS = 60


class RecordReplayAgent:
    """Group-level agent shared by all replicas."""

    def __init__(self, kernel, replica_count: int):
        self.kernel = kernel
        self.replica_count = replica_count
        self.master_index = 0
        #: The master-recorded global order: list of (vtid, op_key_hash).
        self.order: List[Tuple[int, int]] = []
        #: Next order slot each slave replica will release.
        self.positions: Dict[int, int] = {i: 0 for i in range(1, replica_count)}
        self._waitqs: Dict[int, WaitQueue] = {
            i: WaitQueue("rr:%d" % i) for i in range(1, replica_count)
        }
        self.stats = {"recorded": 0, "replayed": 0, "waits": 0, "promotions": 0}

    def _key_hash(self, op_key) -> int:
        return hash(op_key) & 0xFFFFFFFF

    # -- degraded mode ------------------------------------------------------
    def promote(self, new_master_index: int) -> None:
        """The recording master died; a survivor takes over. The new
        master first *drains* the dead master's recorded tail (its own
        position entry persists until it catches up — the remaining
        slaves keep replaying that tail too), then records onward."""
        self.master_index = new_master_index
        self.stats["promotions"] += 1
        waitq = self._waitqs.get(new_master_index)
        if waitq is not None:
            # Threads blocked waiting for the dead master to record more
            # must wake up and re-evaluate their role.
            waitq.notify_all(self.kernel.sim)

    def drop_replica(self, index: int) -> None:
        """Forget a quarantined replica's replay cursor. The recorded
        order is never truncated — survivors still replay all of it."""
        self.positions.pop(index, None)
        waitq = self._waitqs.pop(index, None)
        if waitq is not None:
            waitq.notify_all(self.kernel.sim)

    def sync_point(self, ctx, op_key):
        """Coroutine: called from guest context at a sync operation."""
        replica_index = getattr(ctx.process, "replica_index", None)
        if replica_index is None:
            return
        yield Sleep(SYNC_POINT_COST_NS, cpu=True)
        vtid = ctx.thread.vtid
        while True:
            pos = self.positions.get(replica_index)
            if replica_index == self.master_index and (
                pos is None or pos >= len(self.order)
            ):
                if pos is not None:
                    # Promoted master finished draining its predecessor's
                    # recorded tail; from here on it records.
                    del self.positions[replica_index]
                self.order.append((vtid, self._key_hash(op_key)))
                self.stats["recorded"] += 1
                for queue in self._waitqs.values():
                    queue.notify_all(self.kernel.sim)
                return
            if pos is not None and pos < len(self.order):
                want_vtid, _key = self.order[pos]
                if want_vtid == vtid:
                    self.positions[replica_index] = pos + 1
                    self.stats["replayed"] += 1
                    # Other threads of this replica may be waiting for the
                    # slot we just vacated.
                    waitq = self._waitqs.get(replica_index)
                    if waitq is not None:
                        waitq.notify_all(self.kernel.sim)
                    return
            waitq = self._waitqs.get(replica_index)
            if waitq is None:
                return  # replica was quarantined mid-wait; thread is moribund
            self.stats["waits"] += 1
            event = waitq.register()
            status, _ = yield from wait_interruptible(ctx.thread, event)
            if status == "interrupted":
                waitq.unregister(event)
                return
