"""The epoll shadow mapping (paper §3.9).

epoll lets applications attach a 64-bit ``data`` value — usually a
pointer — to each registered descriptor, and the kernel echoes it back
from ``epoll_wait``. Diversified replicas use *different* pointer values
for the same logical descriptor, so blindly replicating the master's
``epoll_wait`` results would hand slaves the master's pointers.

The shadow map records, per epoll instance and per registered fd, each
replica's own ``data`` value. The master's results are translated to
neutral fd numbers before entering the replication buffer, and each
slave maps the fds back to its own ``data`` values on the way out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class EpollShadowMap:
    def __init__(self, replica_count: int):
        self.replica_count = replica_count
        self.master_index = 0
        # (epfd, fd) -> list of per-replica data values
        self._data: Dict[Tuple[int, int], List[Optional[int]]] = {}
        # epfd -> {master_data_value: fd}
        self._reverse: Dict[int, Dict[int, int]] = {}

    def promote(self, new_master_index: int) -> None:
        """Master replacement (degraded mode).

        The kernel-side epoll instances migrated to the new master still
        hold the *old* master's ``data`` values for every registration
        made before the crash, so the existing reverse map stays valid
        for translating their events. Only registrations made from now
        on carry the new master's values — ``record_ctl_add`` adds those
        as they happen. So: switch who counts as master, keep the map."""
        self.master_index = new_master_index

    def record_ctl_add(self, epfd: int, fd: int, replica_index: int, data: int) -> None:
        key = (epfd, fd)
        values = self._data.get(key)
        if values is None:
            values = [None] * self.replica_count
            self._data[key] = values
        values[replica_index] = data
        if replica_index == self.master_index:
            self._reverse.setdefault(epfd, {})[data] = fd

    def record_ctl_del(self, epfd: int, fd: int, replica_index: int = 0) -> None:
        """Remove one replica's registration.

        Each replica's view is cleared only when *that replica* observes
        its own EPOLL_CTL_DEL: under loose synchronization the master
        runs ahead, and slaves must still be able to translate events
        recorded before the deletion (paper §3.9's mapping is replica-
        local state).
        """
        key = (epfd, fd)
        values = self._data.get(key)
        if values is None:
            return
        if replica_index == self.master_index:
            # After a promotion the kernel-held data value may be a
            # *previous* master's tag — drop every recorded value.
            reverse = self._reverse.get(epfd, {})
            for value in values:
                if value is not None:
                    reverse.pop(value, None)
        values[replica_index] = None
        if all(value is None for value in values):
            del self._data[key]

    def forget_epfd(self, epfd: int) -> None:
        for key in [k for k in self._data if k[0] == epfd]:
            del self._data[key]
        self._reverse.pop(epfd, None)

    # -- translation -------------------------------------------------------
    def master_data_to_fd(self, epfd: int, data: int) -> Optional[int]:
        return self._reverse.get(epfd, {}).get(data)

    def fd_to_replica_data(self, epfd: int, fd: int, replica_index: int) -> Optional[int]:
        values = self._data.get((epfd, fd))
        if values is None:
            return None
        return values[replica_index]

    def neutralize_events(self, epfd: int, events: List[Tuple[int, int]]):
        """Master-side: replace data values with fds. Unknown data values
        pass through untranslated (flagged)."""
        out = []
        for revents, data in events:
            fd = self.master_data_to_fd(epfd, data)
            if fd is None:
                out.append((revents, data, 0))
            else:
                out.append((revents, fd, 1))
        return out

    def localize_events(self, epfd: int, neutral, replica_index: int):
        """Replica-side: map fds back to this replica's data values."""
        out = []
        for revents, value, translated in neutral:
            if translated:
                data = self.fd_to_replica_data(epfd, value, replica_index)
                out.append((revents, data if data is not None else value))
            else:
                out.append((revents, value))
        return out

    def registered_fds(self, epfd: int) -> List[int]:
        return sorted(fd for (e, fd) in self._data if e == epfd)
