"""GHUMVEE: the cross-process lockstep monitor (paper §2, §3).

GHUMVEE traces every replica with ptrace and enforces lockstep on all
monitored calls: replica threads with the same logical thread id (vtid)
rendezvous at syscall entry, their arguments are deep-compared, and the
call proceeds under the master-calls model — externally-visible calls
execute only in the master, whose results (return value and output
buffers) are replicated into the slaves; process-local calls execute in
every replica.

It also owns the pieces IP-MON depends on:

* authoritative fd metadata / the IP-MON file map (§3.6);
* the epoll shadow map for monitored epoll calls (§3.9);
* deferred, consistent signal delivery, incl. the RB signals-pending
  flag (§2.2, §3.8);
* shared-memory restrictions (§2.1) and /proc/<pid>/maps filtering
  (§3.1);
* RB reset arbitration (§3.2) and IP-MON registration arbitration
  (§3.5).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.core.comparator import compare_requests
from repro.core.events import DivergenceReport
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.memory import MemoryFault
from repro.kernel.specs import spec_for
from repro.kernel.structs import (
    EPOLL_EVENT_SIZE,
    pack_epoll_event,
    read_iovecs,
    unpack_epoll_event,
)
from repro.kernel.vfs import FileObject
from repro.ptrace.api import Stop, Tracer
from repro.sim import Sleep

#: Process-local calls every replica executes itself.
ALLEXEC_NAMES = frozenset(
    {
        "mmap",
        "munmap",
        "mprotect",
        "mremap",
        "brk",
        "madvise",
        "fadvise64",
        "clone",
        "exit",
        "exit_group",
        "set_tid_address",
        "prctl",
        "sigaltstack",
        "rt_sigaction",
        "rt_sigprocmask",
        "rt_sigpending",
        "futex",
        "sched_yield",
        "close",
        "dup",
        "dup2",
        "fcntl",
        "ipmon_register",
    }
)

#: Master-executed calls that create descriptors; slaves get shadow
#: entries at the same numbers.
FD_CREATE_NAMES = frozenset(
    {
        "open",
        "openat",
        "socket",
        "accept",
        "accept4",
        "epoll_create",
        "epoll_create1",
        "timerfd_create",
        "pipe",
        "pipe2",
    }
)

#: Calls denied under the shared-memory restriction (§2.1).
SHM_NAMES = frozenset({"shmget", "shmat", "shmdt", "shmctl"})

_READ_FAMILY = frozenset({"read", "readv", "pread64", "preadv"})


class ShadowFile(FileObject):
    """Placeholder object occupying slave descriptor slots.

    Slaves never perform real I/O — their calls are skipped and results
    replicated — but descriptor numbers must stay consistent, and local
    operations (close, dup, fcntl) must work.
    """

    kind = "shadow"

    def __init__(self, mimic_kind: str, name: str = "shadow"):
        super().__init__(name)
        self.mimic_kind = mimic_kind

    def poll_mask(self, kernel) -> int:
        return 0


class AsyncLock:
    """A FIFO mutex for monitor coroutines."""

    __slots__ = ("sim", "name", "locked", "_waiters")

    def __init__(self, sim, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.locked = False
        self._waiters: List = []

    def acquire(self):
        from repro.sim import Event, WaitEvent

        while self.locked:
            event = Event(self.name)
            self._waiters.append(event)
            yield WaitEvent(event)
        self.locked = True

    def release(self) -> None:
        self.locked = False
        if self._waiters:
            self.sim.fire(self._waiters.pop(0))


class LockstepContext:
    """Rendezvous state for one logical thread (vtid)."""

    def __init__(self, ghumvee: "Ghumvee", vtid: int):
        self.ghumvee = ghumvee
        self.vtid = vtid
        self.entry_stops: Dict[int, Stop] = {}
        self.exit_stops: Dict[int, Stop] = {}
        self.phase = "idle"  # idle | entry | executing | draining
        self.active_reqs: Dict[int, object] = {}
        self.master_result: Optional[int] = None
        self.call_class: str = ""
        self.rendezvous_count = 0
        #: Bumped whenever a rendezvous completes; the stall watchdog
        #: compares generations to spot a partial rendezvous that never
        #: filled up (a compromised replica went its own way, §4).
        self.generation = 0
        #: Guards against spawning a finish task twice when a quarantine
        #: re-checks exit completion right after the last exit arrived.
        self.finishing = False
        #: Set when the master died mid-mastercall: the promoted master
        #: skipped its own call, so GHUMVEE re-executes it at finish.
        self.master_reexec = False

    def replica_index_of(self, thread) -> int:
        return self.ghumvee.replica_index(thread.process)

    # -- stop routing -------------------------------------------------------
    def on_entry(self, stop: Stop) -> None:
        index = self.replica_index_of(stop.thread)
        first_arrival = not self.entry_stops
        self.entry_stops[index] = stop
        if len(self.entry_stops) == self.ghumvee.live_replica_count():
            self.generation += 1
            self.phase = "entry"
            self.ghumvee.spawn_monitor_task(self._handle_rendezvous(), "rendezvous")
        elif first_arrival:
            self._arm_stall_watchdog(stop)

    def _arm_stall_watchdog(
        self, stop: Stop, attempt: int = 0, timeout_ns: Optional[int] = None
    ) -> None:
        ghumvee = self.ghumvee
        generation = self.generation
        name = stop.req.name if stop.req is not None else ""
        policy = ghumvee.remon.config.degradation
        if timeout_ns is None:
            timeout_ns = ghumvee.lockstep_timeout_ns

        def _check():
            if ghumvee.remon.shutting_down or ghumvee.group_exiting:
                return
            if self.generation != generation or not self.entry_stops:
                return
            if len(self.entry_stops) >= ghumvee.live_replica_count():
                return
            if policy is not None and attempt + 1 < policy.stall_backoff_attempts:
                # Bounded exponential backoff: give genuinely slow
                # replicas a doubled window before declaring a stall.
                ghumvee.stats["rendezvous_backoff_retries"] += 1
                self._arm_stall_watchdog(
                    stop,
                    attempt=attempt + 1,
                    timeout_ns=min(timeout_ns * 2, policy.stall_backoff_max_ns),
                )
                return
            arrived = sorted(self.entry_stops)
            detail = (
                "lockstep stall: only replicas %r reached the %s "
                "rendezvous within the timeout" % (arrived, name)
            )
            if policy is not None:
                # Route each silent laggard through the degradation
                # decision; it is quarantined (and the rendezvous
                # re-checked at the shrunken quorum) when stalls are
                # classified benign and quorum holds.
                laggards = [
                    p
                    for p in ghumvee.group.processes
                    if not p.exited
                    and not p.quarantined
                    and ghumvee.group.index_of(p) not in self.entry_stops
                ]
                for process in laggards:
                    ghumvee.remon.replica_fault(
                        process,
                        DivergenceReport(
                            ghumvee.kernel.sim.now,
                            self.vtid,
                            name,
                            detail,
                            detected_by="ghumvee",
                            kind="stall",
                        ),
                    )
                return
            ghumvee.divergence(
                DivergenceReport(
                    ghumvee.kernel.sim.now,
                    self.vtid,
                    name,
                    detail,
                    detected_by="ghumvee",
                    kind="stall",
                )
            )

        ghumvee.kernel.sim.call_at(ghumvee.kernel.sim.now + timeout_ns, _check)

    def on_exit(self, stop: Stop) -> None:
        index = self.replica_index_of(stop.thread)
        self.exit_stops[index] = stop
        if self.finishing:
            return
        if len(self.exit_stops) < self.ghumvee.live_replica_count():
            return
        self.finishing = True
        if self.call_class == "allexec":
            self.ghumvee.spawn_monitor_task(self._finish_allexec(), "allexec-exit")
        else:
            self.ghumvee.spawn_monitor_task(self._finish_mastercall(), "exit")

    # -- phases ----------------------------------------------------------------
    def _handle_rendezvous(self):
        ghumvee = self.ghumvee
        stops = [self.entry_stops[i] for i in sorted(self.entry_stops)]
        name = stops[0].req.name
        if name == "clone":
            # Serialize thread creation across logical threads so vtid
            # assignment matches in every replica. Taken before the
            # monitor lock to keep lock ordering acyclic.
            yield from ghumvee.clone_lock.acquire()
        # The monitor serializes its handling: ptrace stop processing
        # shares the monitor's waitpid loop and kernel-side tracing
        # locks, which is a large part of why CP monitoring scales so
        # poorly with syscall density.
        obs = ghumvee.obs
        lock_wait_from = ghumvee.kernel.sim.now
        yield from ghumvee.monitor_lock.acquire()
        span = None
        if obs is not None:
            obs.registry.histogram("rendezvous_wait_ns").observe(
                ghumvee.kernel.sim.now - lock_wait_from
            )
            if obs.tracer.enabled:
                span = obs.tracer.begin(
                    "ghumvee", "rendezvous", syscall=name, vtid=self.vtid,
                    replicas=len(stops),
                )
        try:
            yield from self._rendezvous_locked(stops)
        finally:
            ghumvee.monitor_lock.release()
            if span is not None:
                span.finish()

    def _rendezvous_locked(self, stops):
        ghumvee = self.ghumvee
        costs = ghumvee.costs
        if ghumvee.remon.result.diverged or ghumvee.remon.shutting_down:
            return  # leave everyone parked; teardown is imminent
        self.rendezvous_count += 1
        ghumvee.stats["monitored_calls"] += 1
        reqs = [stop.req for stop in stops]
        spaces = [stop.thread.process.space for stop in stops]
        n = len(stops)

        # ptrace entry stops + monitor dispatch (+ obs instruments when on).
        yield Sleep(
            n * costs.ptrace_roundtrip_ns()
            + costs.monitor_dispatch_ns
            + ghumvee._obs_ns,
            cpu=True,
        )
        obs = ghumvee.obs
        if obs is not None and obs.recorder is not None:
            now = ghumvee.kernel.sim.now
            for index, stop in sorted(self.entry_stops.items()):
                obs.recorder.record(index, now, "rendezvous",
                                    stop.req.name, vtid=self.vtid)

        # Cross-check arguments (deep copies via process_vm_readv).
        mismatch, nbytes = compare_requests(list(zip(reqs, spaces)))
        yield Sleep(
            costs.compare_cost_ns(nbytes, len(reqs[0].args) * n)
            + n * costs.ptrace_peek_ns,
            cpu=True,
        )
        if mismatch is not None:
            ghumvee.divergence(
                DivergenceReport(
                    ghumvee.kernel.sim.now,
                    self.vtid,
                    reqs[0].name,
                    mismatch.detail,
                    detected_by="ghumvee",
                    replica_args=[r.args for r in reqs],
                    replica=mismatch.replica,
                )
            )
            return

        name = reqs[0].name
        self.active_reqs = {i: stop.req for i, stop in self.entry_stops.items()}

        # Temporal exemption bookkeeping (§3.4): this monitored call was
        # approved; identical calls may soon be exempted.
        temporal = ghumvee.remon.policy.temporal
        if temporal is not None:
            temporal.record_approval(reqs[0], ghumvee.kernel.sim.now)

        # epoll bookkeeping (§3.9): record every replica's own data value
        # so monitored epoll_wait results can be translated per replica.
        if name == "epoll_ctl":
            for index, stop in self.entry_stops.items():
                self._record_epoll_ctl(stop.thread.process.space, stop.req, index)

        # Deliver deferred signals now: every replica is parked at an
        # equivalent state (§2.2).
        ghumvee.flush_pending_signals(self.vtid)

        # Shared-memory restriction (§2.1): deny consistently everywhere.
        if name in SHM_NAMES and not ghumvee.allow_shared_memory:
            ghumvee.stats["shm_denied"] += 1
            for stop in stops:
                ghumvee.tracer.skip_call(stop.thread, -E.EACCES)
            self.call_class = "allexec"  # each replica observes its own denial
            self._release_entry(stops)
            return
        if name == "mmap" and not ghumvee.allow_shared_memory:
            flags = reqs[0].arg(3)
            if flags & C.MAP_SHARED and not flags & C.MAP_ANONYMOUS:
                for stop in stops:
                    ghumvee.tracer.skip_call(stop.thread, -E.EACCES)
                self.call_class = "allexec"
                self._release_entry(stops)
                return

        if name == "ipmon_register" and not ghumvee.remon.config.allow_ipmon_registration:
            # §3.5: GHUMVEE arbitrates and vetoes the registration.
            ghumvee.stats["ipmon_registrations_denied"] = (
                ghumvee.stats.get("ipmon_registrations_denied", 0) + 1
            )
            for stop in stops:
                ghumvee.tracer.skip_call(stop.thread, -E.EPERM)
            self.call_class = "allexec"
            self._release_entry(stops)
            return

        if name in ("exit", "exit_group"):
            # Replicas agreed to terminate: no exit stop will follow (the
            # call never returns), and exit_group legitimately tears down
            # sibling threads that may be parked in their own rendezvous.
            if name == "exit_group":
                ghumvee.group_exiting = True
            self.entry_stops = {}
            self.phase = "idle"
            for stop in stops:
                ghumvee.tracer.resume(stop.thread)
            return

        if name in ALLEXEC_NAMES:
            self.call_class = "allexec"
            self._release_entry(stops)
            return

        # Master-calls model: the master executes, slaves skip.
        self.call_class = "fdcreate" if name in FD_CREATE_NAMES else "mastercall"
        self.phase = "executing"
        master_index = ghumvee.group.master_index
        for index, stop in self.entry_stops.items():
            if index != master_index:
                ghumvee.tracer.skip_call(stop.thread, 0)
        self._release_entry(stops)

    def _record_epoll_ctl(self, space, req, replica_index: int) -> None:
        ghumvee = self.ghumvee
        op, fd, epfd = req.arg(1), req.arg(2), req.arg(0)
        if op == C.EPOLL_CTL_DEL:
            ghumvee.epoll_map.record_ctl_del(epfd, fd, replica_index)
            return
        addr = req.arg(3)
        if not addr:
            return
        try:
            raw = space.read(addr, EPOLL_EVENT_SIZE)
        except MemoryFault:
            return
        _events, data = unpack_epoll_event(raw)
        ghumvee.epoll_map.record_ctl_add(epfd, fd, replica_index, data)

    def _release_entry(self, stops) -> None:
        self.entry_stops = {}
        for stop in stops:
            self.ghumvee.tracer.resume(stop.thread)

    def _finish_allexec(self):
        ghumvee = self.ghumvee
        yield from ghumvee.monitor_lock.acquire()
        try:
            yield from self._finish_allexec_locked()
        finally:
            ghumvee.monitor_lock.release()

    def _finish_allexec_locked(self):
        ghumvee = self.ghumvee
        costs = ghumvee.costs
        stops = [self.exit_stops[i] for i in sorted(self.exit_stops)]
        n = len(stops)
        yield Sleep(n * costs.ptrace_roundtrip_ns(), cpu=True)
        name = stops[0].req.name if stops[0].req is not None else ""
        results = [stop.result for stop in stops]
        # Results may legitimately differ (mmap addresses, tids) but must
        # agree on success vs failure.
        ok = [isinstance(r, int) and r >= -4095 and r < 0 for r in results]
        if any(ok) and not all(ok):
            ghumvee.divergence(
                DivergenceReport(
                    ghumvee.kernel.sim.now,
                    self.vtid,
                    name,
                    "allexec results disagree on success: %r" % (results,),
                    detected_by="ghumvee",
                )
            )
            return
        # Bookkeeping keys off any present replica's request: descriptor
        # numbers are identical across replicas, and after a quarantine
        # index 0 may no longer be in the group.
        req0 = self.active_reqs[min(self.active_reqs)] if self.active_reqs else None
        if name == "clone":
            ghumvee.clone_lock.release()
        elif name == "close" and results and results[0] == 0 and req0 is not None:
            ghumvee.fd_metadata.record_close(req0.arg(0))
        elif name in ("dup", "dup2") and results and results[0] >= 0 and req0 is not None:
            ghumvee.fd_metadata.record_dup(req0.arg(0), results[0])
        elif name == "fcntl" and results and results[0] >= 0 and req0 is not None:
            req = req0
            if req.arg(1) == C.F_SETFL:
                ghumvee.fd_metadata.record_nonblocking(
                    req.arg(0), bool(req.arg(2) & C.O_NONBLOCK)
                )
            elif req.arg(1) == C.F_DUPFD:
                ghumvee.fd_metadata.record_dup(req.arg(0), results[0])
        elif name == "ipmon_register" and results and results[0] == 0:
            ghumvee.stats["ipmon_registrations"] += 1
        self._finish_common(stops)

    def _finish_mastercall(self):
        ghumvee = self.ghumvee
        yield from ghumvee.monitor_lock.acquire()
        try:
            yield from self._finish_mastercall_locked()
        finally:
            ghumvee.monitor_lock.release()

    def _finish_mastercall_locked(self):
        ghumvee = self.ghumvee
        costs = ghumvee.costs
        mi = ghumvee.group.master_index
        master_stop = self.exit_stops.get(mi)
        if master_stop is None:
            # No master survived this call (quarantine without a viable
            # promotion, or teardown racing the finish): unblock the
            # parked survivors with EINTR and let remon's verdict stand.
            for stop in self.exit_stops.values():
                stop.final_result = -E.EINTR
            self._finish_common(list(self.exit_stops.values()))
            return
        slave_stops = [self.exit_stops[i] for i in sorted(self.exit_stops) if i != mi]
        n = len(self.exit_stops)
        req = self.active_reqs.get(mi)
        name = req.name if req is not None else ""
        yield Sleep(n * costs.ptrace_roundtrip_ns(), cpu=True)
        if self.master_reexec and req is not None:
            # The original master died mid-call; the promoted master had
            # skipped its own copy, so the monitor re-executes the call
            # on its behalf. This is an at-least-once boundary (see
            # DESIGN.md, "Fault model"): a call the dead master already
            # completed externally may run a second time.
            result = yield from ghumvee.kernel.invoke(master_stop.thread, req)
            master_stop.final_result = result
            ghumvee.stats["mastercall_reexecs"] += 1
        else:
            result = master_stop.result

        replicated = 0
        if isinstance(result, int) and result >= 0 and req is not None:
            replicated = yield from self._replicate_outputs(req, result, slave_stops)
        if self.call_class == "fdcreate" and isinstance(result, int) and result >= 0:
            self._install_shadows(req, result, slave_stops)
        # getters & time: consistent results from the master for all.
        for stop in slave_stops:
            stop.final_result = result
        ghumvee.stats["bytes_replicated"] += replicated
        self._finish_common([master_stop] + slave_stops)

    def _finish_common(self, stops) -> None:
        self.exit_stops = {}
        self.active_reqs = {}
        self.phase = "idle"
        self.call_class = ""
        self.finishing = False
        self.master_reexec = False
        for stop in stops:
            self.ghumvee.tracer.resume(stop.thread, final_result=stop.final_result)

    # -- output replication ---------------------------------------------------
    def _replicate_outputs(self, master_req, result: int, slave_stops):
        ghumvee = self.ghumvee
        costs = ghumvee.costs
        spec = spec_for(master_req.name)
        if spec is None or not slave_stops:
            return 0
        master_space = ghumvee.group.master().space
        name = master_req.name
        replicated = 0

        # Special case: epoll_wait needs per-replica data translation.
        if name == "epoll_wait" and result > 0:
            replicated = self._replicate_epoll(master_req, result, slave_stops)
            yield Sleep(costs.replicate_cost_ns(replicated), cpu=True)
            return replicated

        # Special case: poll rewrites the pollfd array in place.
        if name == "poll":
            replicated = self._replicate_pollfds(master_req, slave_stops)
            yield Sleep(costs.replicate_cost_ns(replicated), cpu=True)
            return replicated

        for index in spec.out_buffers():
            arg_spec = spec.args[index]
            master_addr = master_req.arg(index)
            if not master_addr:
                continue
            data = self._read_master_out(
                master_space, master_req, arg_spec, index, result
            )
            if data is None:
                continue
            # /proc/<pid>/maps filtering (§3.1): scrub IP-MON mappings
            # before any replica-visible copy.
            if name in _READ_FAMILY and ghumvee.fd_is_special(master_req.arg(0)):
                data, result = ghumvee.filter_special_read(
                    master_space, master_addr, data, result
                )
                for stop in slave_stops:
                    stop.final_result = result
                self.exit_stops[ghumvee.group.master_index].final_result = result
            for stop in slave_stops:
                slave_req = self.active_reqs.get(
                    self.replica_index_of(stop.thread), master_req
                )
                slave_addr = slave_req.arg(index)
                if not slave_addr:
                    continue
                try:
                    if arg_spec.kind == "iovec_out":
                        self._scatter_iovec(
                            stop.thread.process.space, slave_req, arg_spec, index, data
                        )
                    else:
                        stop.thread.process.space.write(
                            slave_addr, data, check_prot=False
                        )
                except MemoryFault:
                    continue
                replicated += len(data)
        yield Sleep(
            costs.replicate_cost_ns(replicated)
            + len(slave_stops) * costs.ptrace_poke_ns,
            cpu=True,
        )
        return replicated

    def _read_master_out(self, space, req, arg_spec, index, result):
        from repro.core.handlers import IpmonHandler

        helper = IpmonHandler(req.name)
        valid = helper._valid_length(arg_spec, req.args, result)
        if valid <= 0:
            return b""
        try:
            if arg_spec.kind == "iovec_out":
                count = int(req.args[arg_spec.count_arg])
                iovecs = read_iovecs(space, req.arg(index), count)
                out = bytearray()
                remaining = result
                for base, length in iovecs:
                    if remaining <= 0:
                        break
                    take = min(length, remaining)
                    out += space.read(base, take, check_prot=False)
                    remaining -= take
                return bytes(out)
            return space.read(req.arg(index), valid, check_prot=False)
        except MemoryFault:
            return None

    def _scatter_iovec(self, space, req, arg_spec, index: int, data: bytes) -> None:
        count = int(req.args[arg_spec.count_arg])
        iovecs = read_iovecs(space, req.arg(index), count)
        cursor = 0
        for base, length in iovecs:
            if cursor >= len(data):
                break
            chunk = data[cursor : cursor + length]
            space.write(base, chunk, check_prot=False)
            cursor += len(chunk)

    def _replicate_pollfds(self, master_req, slave_stops) -> int:
        from repro.kernel.structs import POLLFD_SIZE

        master_space = self.ghumvee.group.master().space
        nfds = master_req.arg(1)
        if not master_req.arg(0) or nfds <= 0:
            return 0
        try:
            raw = master_space.read(
                master_req.arg(0), nfds * POLLFD_SIZE, check_prot=False
            )
        except MemoryFault:
            return 0
        replicated = 0
        for stop in slave_stops:
            slave_req = self.active_reqs.get(
                self.replica_index_of(stop.thread), master_req
            )
            if not slave_req.arg(0):
                continue
            try:
                stop.thread.process.space.write(
                    slave_req.arg(0), raw, check_prot=False
                )
                replicated += len(raw)
            except MemoryFault:
                continue
        return replicated

    def _replicate_epoll(self, master_req, result: int, slave_stops) -> int:
        ghumvee = self.ghumvee
        master_space = ghumvee.group.master().space
        epfd = master_req.arg(0)
        try:
            raw = master_space.read(
                master_req.arg(1), result * EPOLL_EVENT_SIZE, check_prot=False
            )
        except MemoryFault:
            return 0
        events = [
            unpack_epoll_event(raw[i * EPOLL_EVENT_SIZE : (i + 1) * EPOLL_EVENT_SIZE])
            for i in range(result)
        ]
        neutral = ghumvee.epoll_map.neutralize_events(epfd, events)
        replicated = 0
        # The master's own buffer holds whatever data values the kernel
        # echoed — after a promotion those are the dead master's tags, so
        # localize them for the current master as well (identity rewrite
        # when no promotion has happened).
        master_index = ghumvee.group.master_index
        master_localized = ghumvee.epoll_map.localize_events(
            epfd, neutral, master_index
        )
        for pos, (revents, data) in enumerate(master_localized):
            try:
                master_space.write(
                    master_req.arg(1) + pos * EPOLL_EVENT_SIZE,
                    pack_epoll_event(revents, data),
                    check_prot=False,
                )
            except MemoryFault:
                break
        for stop in slave_stops:
            index = self.replica_index_of(stop.thread)
            slave_req = self.active_reqs.get(index, master_req)
            localized = ghumvee.epoll_map.localize_events(epfd, neutral, index)
            for pos, (revents, data) in enumerate(localized):
                try:
                    stop.thread.process.space.write(
                        slave_req.arg(1) + pos * EPOLL_EVENT_SIZE,
                        pack_epoll_event(revents, data),
                        check_prot=False,
                    )
                    replicated += EPOLL_EVENT_SIZE
                except MemoryFault:
                    break
        return replicated

    # -- shadow descriptors -----------------------------------------------------
    def _install_shadows(self, master_req, result: int, slave_stops) -> None:
        ghumvee = self.ghumvee
        name = master_req.name
        master_process = ghumvee.group.master()
        if name in ("pipe", "pipe2"):
            # Fd numbers came back through the replicated buffer.
            try:
                raw = master_process.space.read(master_req.arg(0), 8, check_prot=False)
                rfd, wfd = struct.unpack("<ii", raw)
            except MemoryFault:
                return
            for fd in (rfd, wfd):
                ghumvee.fd_metadata.record_open(fd, "pipe")
                for stop in slave_stops:
                    _install_shadow_fd(stop.thread.process, fd, "pipe")
            return
        fd = result
        entry = master_process.fdtable.get(fd)
        kind = entry.ofd.file.kind if entry is not None else "reg"
        nonblocking = entry.ofd.nonblocking if entry is not None else False
        special = getattr(entry.ofd.file, "proc_entry", None) is not None if entry else False
        if special and getattr(entry.ofd.file, "proc_entry", ("",))[0] == "maps":
            # §3.1: scrub IP-MON's hidden mappings from the snapshot the
            # replica is about to read.
            node = entry.ofd.file
            content = node.content()
            node.snapshot = b"\n".join(
                line
                for line in content.split(b"\n")
                if b"[ipmon-rb]" not in line and b"[ipmon-filemap]" not in line
            )
        ghumvee.fd_metadata.record_open(fd, kind, nonblocking, special)
        for stop in slave_stops:
            _install_shadow_fd(stop.thread.process, fd, kind)

    # -- degraded mode --------------------------------------------------------
    def drop_replica(self, index: int, was_master: bool) -> None:
        """A replica was quarantined: release its lockstep slots and
        re-check whether pending rendezvous or finish phases complete at
        the shrunken quorum."""
        ghumvee = self.ghumvee
        self.entry_stops.pop(index, None)
        self.exit_stops.pop(index, None)
        self.active_reqs.pop(index, None)
        if (
            was_master
            and self.phase == "executing"
            and self.call_class in ("mastercall", "fdcreate")
        ):
            # The dying master may never produce a result; the promoted
            # master must re-execute the call at finish time.
            self.master_reexec = True
        live = ghumvee.live_replica_count()
        if live == 0:
            return
        if (
            self.phase == "idle"
            and not self.call_class
            and self.entry_stops
            and len(self.entry_stops) >= live
        ):
            self.generation += 1
            self.phase = "entry"
            ghumvee.spawn_monitor_task(self._handle_rendezvous(), "rendezvous")
            return
        if (
            self.call_class
            and self.exit_stops
            and len(self.exit_stops) >= live
            and not self.finishing
        ):
            self.finishing = True
            if self.call_class == "allexec":
                ghumvee.spawn_monitor_task(self._finish_allexec(), "allexec-exit")
            else:
                ghumvee.spawn_monitor_task(self._finish_mastercall(), "exit")

    # -- teardown ------------------------------------------------------------
    def on_replica_gone(self, stop: Stop) -> None:
        """A replica thread died while a rendezvous was pending."""
        if self.ghumvee.group_exiting:
            return
        process = stop.thread.process
        if process.quarantined or self.ghumvee.remon.crash_would_degrade(process):
            # The quarantine path (remon.replica_fault → drop_replica)
            # releases this replica's slots in a controlled way instead.
            return
        if self.entry_stops or self.exit_stops:
            parked = [s.thread.name for s in self.entry_stops.values()]
            self.ghumvee.divergence(
                DivergenceReport(
                    self.ghumvee.kernel.sim.now,
                    self.vtid,
                    stop.req.name if stop.req else "",
                    "replica %s died (sig=%d) while %r awaited lockstep"
                    % (stop.thread.name, stop.signo, parked),
                    detected_by="exit",
                )
            )


def _install_shadow_fd(process, fd: int, kind: str) -> None:
    from repro.kernel.vfs import OpenFileDescription

    shadow = ShadowFile(kind, name="shadow:%d" % fd)
    process.fdtable.install(fd, OpenFileDescription(shadow, C.O_RDWR))


class Ghumvee:
    """The monitor process: tracer callbacks + lockstep state machines."""

    def __init__(self, remon):
        self.remon = remon
        self.kernel = remon.kernel
        self.group = remon.group
        self.costs = self.kernel.config.costs
        self.tracer = Tracer(self.kernel, name="ghumvee")
        self.tracer.stop_handler = self._on_stop
        self.tracer.signal_handler = self._on_signal
        self.tracer.exit_handler = self._on_exit
        self.fd_metadata = remon.fd_metadata
        self.epoll_map = remon.epoll_map
        self.allow_shared_memory = remon.config.allow_shared_memory
        self.contexts: Dict[int, LockstepContext] = {}
        self.pending_signals: List[int] = []
        #: Set once an exit_group rendezvous completes: replica teardown
        #: from that point on is expected, not divergence.
        self.group_exiting = False
        self.monitor_lock = AsyncLock(self.kernel.sim, "monitor")
        self.clone_lock = AsyncLock(self.kernel.sim, "clone")
        self.obs = remon.obs
        # Deterministic virtual cost obs instruments add per rendezvous;
        # zero unless spans / the flight recorder are enabled.
        self._obs_ns = self.obs.dispatch_cost_ns if self.obs is not None else 0
        #: How long a partially-filled rendezvous may wait before the
        #: monitor declares the replicas' syscall sequences diverged.
        self.lockstep_timeout_ns = 1_000_000_000
        self.stats = {
            "monitored_calls": 0,
            "bytes_replicated": 0,
            "signals_deferred": 0,
            "signals_delivered": 0,
            "shm_denied": 0,
            "ipmon_registrations": 0,
            "rendezvous_backoff_retries": 0,
            "mastercall_reexecs": 0,
        }

    # ------------------------------------------------------------------
    def attach_all(self) -> None:
        for process in self.group.processes:
            self.tracer.attach(process)

    def replica_index(self, process) -> int:
        return self.group.index_of(process)

    def live_replica_count(self) -> int:
        """Replicas that still participate in rendezvous: quarantined
        ones are out of the group even before their teardown lands."""
        return sum(
            1 for p in self.group.processes if not p.exited and not p.quarantined
        )

    def on_replica_quarantined(self, index: int, was_master: bool) -> None:
        """Release a quarantined replica's lockstep state in every
        logical-thread context and re-check pending phases against the
        shrunken quorum."""
        for ctx in list(self.contexts.values()):
            ctx.drop_replica(index, was_master)

    def context(self, vtid: int) -> LockstepContext:
        ctx = self.contexts.get(vtid)
        if ctx is None:
            ctx = LockstepContext(self, vtid)
            self.contexts[vtid] = ctx
        return ctx

    def spawn_monitor_task(self, gen, label: str) -> None:
        task = self.kernel.sim.spawn(gen, name="ghumvee:%s" % label)

        def _check_failure(_value, t=task):
            if t.failure is not None:
                self.remon.monitor_failures.append(t.failure)

        task.done_event.add_listener(_check_failure)

    # ------------------------------------------------------------------
    # Tracer callbacks
    # ------------------------------------------------------------------
    def _on_stop(self, stop: Stop) -> None:
        if self.remon.shutting_down or self.remon.result.diverged:
            # Leave the thread parked; remon is killing everything.
            return
        ctx = self.context(stop.thread.vtid)
        if stop.kind == "syscall-entry":
            ctx.on_entry(stop)
        else:
            ctx.on_exit(stop)

    def _on_signal(self, stop: Stop) -> None:
        """Asynchronous signal intercepted: defer it (§2.2/§3.8)."""
        self.stats["signals_deferred"] += 1
        self.pending_signals.append(stop.signo)
        ipmon = self.remon.ipmon
        if ipmon is not None:
            ipmon.set_signals_pending(True)
            # §3.8: abort the master replica's blocking unmonitored call
            # so deferral cannot stall indefinitely.
            master = self.group.master()
            for thread in master.live_threads():
                if thread.in_interruptible_wait and not thread.ptrace_stopped:
                    self.tracer.interrupt_call(thread)

    def _on_exit(self, stop: Stop) -> None:
        if self.remon.shutting_down:
            return
        ctx = self.contexts.get(stop.thread.vtid)
        if ctx is not None:
            ctx.on_replica_gone(stop)
        self.remon.on_replica_thread_exit(stop)

    # ------------------------------------------------------------------
    # Deferred signal delivery
    # ------------------------------------------------------------------
    def flush_pending_signals(self, vtid: int) -> None:
        if not self.pending_signals:
            return
        signals, self.pending_signals = self.pending_signals, []
        for signo in signals:
            self.stats["signals_delivered"] += 1
            for process in self.group.processes:
                if process.exited:
                    continue
                target = None
                for thread in process.threads.values():
                    if thread.vtid == vtid and not thread.exited:
                        target = thread
                        break
                if target is None:
                    threads = process.live_threads()
                    target = threads[0] if threads else None
                if target is not None:
                    self.tracer.inject_signal(target, signo)
        ipmon = self.remon.ipmon
        if ipmon is not None:
            ipmon.set_signals_pending(False)

    # ------------------------------------------------------------------
    # Special files (§3.1)
    # ------------------------------------------------------------------
    def fd_is_special(self, fd: int) -> bool:
        info = self.fd_metadata.info(fd)
        return bool(info and (info.special or info.kind == "special"))

    def filter_special_read(self, master_space, addr: int, data: bytes, result: int):
        """Scrub IP-MON's hidden mappings out of /proc/*/maps content."""
        lines = data.split(b"\n")
        kept = [
            line
            for line in lines
            if b"[ipmon-rb]" not in line and b"[ipmon-filemap]" not in line
        ]
        filtered = b"\n".join(kept)
        if filtered != data:
            try:
                master_space.write(addr, filtered + b"\x00" * (len(data) - len(filtered)),
                                   check_prot=False)
            except MemoryFault:
                pass
            return filtered, len(filtered)
        return data, result

    # ------------------------------------------------------------------
    def divergence(self, report: DivergenceReport) -> None:
        self.remon.divergence(report)
