"""MVEE-wide call-digest interning.

Every layer that fingerprints a system call — the distributed lanes'
async cross-checks (:mod:`repro.dist.wire`), the per-shard rendezvous
votes, and the CP/IP-MON comparator (:mod:`repro.core.comparator`) —
digests the same canonical argument blob: ``blake2b(name || blob)``
truncated to 64 bits. Before this module each consumer kept its own
cache (or none), so an identical blob was hashed once per replica per
node per round. The interner is process-wide and keyed on the canonical
``(name, blob_bytes)`` pair, so an identical blob hashes exactly once
no matter how many replicas, nodes, or subsystems look at it.

Interning is transparent: a digest is a pure function of its inputs,
so cache hits never change simulated results — only host CPU time.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple


class DigestInterner:
    """Bounded FIFO-evicting cache of 64-bit call digests.

    Server loops replay near-identical calls, so the same
    ``(name, blob)`` pair is digested over and over; blake2b per call
    is the hot spot. Bounded FIFO eviction keeps memory flat.
    """

    __slots__ = ("capacity", "hits", "misses", "_table")

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._table: Dict[Tuple[str, bytes], int] = {}

    def digest(self, name: str, blob_bytes: bytes) -> int:
        key = (name, blob_bytes)
        value = self._table.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        h = hashlib.blake2b(digest_size=8)
        h.update(name.encode())
        h.update(blob_bytes)
        value = int.from_bytes(h.digest(), "little")
        if len(self._table) >= self.capacity:
            # FIFO eviction: dict preserves insertion order.
            self._table.pop(next(iter(self._table)))
        self._table[key] = value
        return value

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide interner. Deliberately not per-cluster or per-MVEE:
#: digests are pure, so sharing across runs and subsystems is safe and
#: maximises reuse.
interner = DigestInterner()


def intern_digest(name: str, blob_bytes: bytes) -> int:
    """64-bit digest of one syscall's name + canonical argument blob."""
    return interner.digest(name, blob_bytes)
