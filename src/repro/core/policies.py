"""Monitoring relaxation policies (paper §3.4, Table 1).

A *spatial exemption* policy picks a level; every system call at that
level or below may execute as an unmonitored call through IP-MON.
Unconditionally-allowed calls never need monitoring at their level;
conditionally-allowed calls are exempted only when their file-descriptor
arguments satisfy the level (the ``MAYBE_CHECKED`` handlers consult the
IP-MON file map for this).

System calls that allocate or manage process resources — descriptors,
memory mappings, threads/processes, signal handling — are *always*
monitored by GHUMVEE regardless of level.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, FrozenSet, Optional

from repro.errors import PolicyError


class Level(IntEnum):
    """Spatial exemption levels, lowest to highest relaxation."""

    NO_IPMON = 0  # IP-MON disabled: every call is monitored (GHUMVEE alone)
    BASE = 1
    NONSOCKET_RO = 2
    NONSOCKET_RW = 3
    SOCKET_RO = 4
    SOCKET_RW = 5


#: Table 1, "unconditionally allowed calls" column.
UNCONDITIONAL: Dict[Level, FrozenSet[str]] = {
    Level.BASE: frozenset(
        {
            "gettimeofday",
            "clock_gettime",
            "time",
            "getpid",
            "gettid",
            "getpgrp",
            "getppid",
            "getgid",
            "getegid",
            "getuid",
            "geteuid",
            "getcwd",
            "getpriority",
            "getrusage",
            "times",
            "capget",
            "getitimer",
            "sysinfo",
            "uname",
            "sched_yield",
            "nanosleep",
        }
    ),
    Level.NONSOCKET_RO: frozenset(
        {
            "access",
            "faccessat",
            "lseek",
            "stat",
            "lstat",
            "fstat",
            "newfstatat",
            "getdents",
            "readlink",
            "readlinkat",
            "getxattr",
            "lgetxattr",
            "fgetxattr",
            "alarm",
            "setitimer",
            "timerfd_gettime",
            "madvise",
            "fadvise64",
        }
    ),
    Level.NONSOCKET_RW: frozenset(
        {"sync", "syncfs", "fsync", "fdatasync", "timerfd_settime"}
    ),
    Level.SOCKET_RO: frozenset(
        {
            "epoll_wait",
            "recvfrom",
            "recvmsg",
            "recvmmsg",
            "getsockname",
            "getpeername",
            "getsockopt",
        }
    ),
    Level.SOCKET_RW: frozenset(
        {
            "sendto",
            "sendmsg",
            "sendmmsg",
            "sendfile",
            "epoll_ctl",
            "setsockopt",
            "shutdown",
        }
    ),
}

#: Table 1, "conditionally allowed calls" column: exempted only when the
#: descriptor argument's type satisfies the level.
CONDITIONAL: Dict[Level, FrozenSet[str]] = {
    Level.NONSOCKET_RO: frozenset(
        {"read", "readv", "pread64", "preadv", "select", "poll", "futex", "ioctl", "fcntl"}
    ),
    Level.NONSOCKET_RW: frozenset({"write", "writev", "pwrite64", "pwritev"}),
    Level.SOCKET_RO: frozenset({"read", "readv", "pread64", "preadv", "select", "poll"}),
    Level.SOCKET_RW: frozenset({"write", "writev", "pwrite64", "pwritev"}),
}

#: Read-type conditional calls whose descriptor(s) decide the level.
_READ_FAMILY = frozenset({"read", "readv", "pread64", "preadv", "select", "poll"})
_WRITE_FAMILY = frozenset({"write", "writev", "pwrite64", "pwritev"})

#: fcntl subcommands / ioctls IP-MON may answer without GHUMVEE: pure
#: queries. Mutating subcommands change state GHUMVEE tracks (the file
#: map) and are forced back to the monitor.
SAFE_FCNTL_CMDS = frozenset({1, 3})  # F_GETFD, F_GETFL
SAFE_IOCTL_CMDS = frozenset({0x541B})  # FIONREAD


class RelaxationPolicy:
    """A configured spatial exemption policy.

    Args:
        level: the chosen :class:`Level`.
        temporal: optional :class:`~repro.core.temporal.TemporalPolicy`
            layered on top (paper §3.4's second option).
    """

    def __init__(self, level: Level = Level.NONSOCKET_RW, temporal=None):
        if not isinstance(level, Level):
            try:
                level = Level(level)
            except ValueError:
                raise PolicyError("unknown relaxation level: %r" % (level,))
        self.level = level
        self.temporal = temporal

    # ------------------------------------------------------------------
    def unmonitored_set(self) -> FrozenSet[str]:
        """Every syscall name that *may* run unmonitored at this level
        (the set IP-MON registers with IK-B, paper §3.5)."""
        names = set()
        for lvl in Level:
            if lvl == Level.NO_IPMON or lvl > self.level:
                continue
            names |= UNCONDITIONAL.get(lvl, frozenset())
            names |= CONDITIONAL.get(lvl, frozenset())
        return frozenset(names)

    def allows_unconditionally(self, name: str) -> bool:
        for lvl in Level:
            if lvl == Level.NO_IPMON or lvl > self.level:
                continue
            if name in UNCONDITIONAL.get(lvl, frozenset()):
                return True
        return False

    def is_conditional(self, name: str) -> bool:
        for lvl in Level:
            if lvl == Level.NO_IPMON or lvl > self.level:
                continue
            if name in CONDITIONAL.get(lvl, frozenset()):
                return True
        return False

    # ------------------------------------------------------------------
    def allows_fd_kind(self, name: str, fd_kind: Optional[str], nonblocking: bool) -> bool:
        """The MAYBE_CHECKED decision for one conditional call given the
        descriptor's type from the file map.

        ``fd_kind`` is the file-map classification (``reg``, ``pipe``,
        ``sock``, ``listen``, ``epoll``, ``timerfd``, ``special``,
        ``chr``, ``dir``) or None when the fd is unknown.
        """
        if fd_kind is None or fd_kind == "special":
            return False  # unknown/special descriptors always monitored
        is_socketish = fd_kind in ("sock", "listen")
        if name in _READ_FAMILY:
            needed = Level.SOCKET_RO if is_socketish else Level.NONSOCKET_RO
            return self.level >= needed
        if name in _WRITE_FAMILY:
            needed = Level.SOCKET_RW if is_socketish else Level.NONSOCKET_RW
            return self.level >= needed
        if name == "futex":
            return self.level >= Level.NONSOCKET_RO
        if name == "fcntl":
            return self.level >= Level.NONSOCKET_RO
        if name == "ioctl":
            return self.level >= Level.NONSOCKET_RO
        return False

    def minimum_level_for(self, name: str, fd_kind: Optional[str] = None) -> Optional[Level]:
        """The lowest level at which ``name`` may run unmonitored, or
        None when it is always monitored (resource management)."""
        for lvl in sorted(Level):
            if lvl == Level.NO_IPMON:
                continue
            if name in UNCONDITIONAL.get(lvl, frozenset()):
                return lvl
            if name in CONDITIONAL.get(lvl, frozenset()):
                if fd_kind is None:
                    return lvl
                probe = RelaxationPolicy(lvl)
                if probe.allows_fd_kind(name, fd_kind, False):
                    return lvl
        return None

    def __repr__(self):
        return "RelaxationPolicy(%s)" % self.level.name


@dataclass
class DegradationPolicy:
    """Graceful-degradation policy: which replica faults the MVEE may
    absorb by quarantining the faulted replica and continuing with the
    surviving N−1 set, instead of fail-stopping.

    Classification is deliberately conservative: only *crashes* (a
    replica died) and — configurably — *stalls* (a replica silently
    stopped participating) are benign. Any behavioural mismatch (a
    GHUMVEE lockstep comparison, an IP-MON slave argument check, an
    allexec success disagreement) remains a security divergence and
    fail-stops regardless of this policy, which is what keeps the
    paper's §4 security argument intact in degraded mode.
    """

    #: Fail-stop once fewer than this many replicas would survive.
    min_quorum: int = 2
    #: Replica 0's death promotes the lowest surviving index to master
    #: (RB lanes, fd ownership, rr_agent recording are re-pointed).
    promote_master: bool = True
    #: Treat a lockstep/RB stall as a benign fault (quarantine the
    #: laggard) rather than as divergence.
    stall_is_benign: bool = True
    #: Allow IK-B to re-issue a lost authorization token once for an
    #: in-flight IP-MON call (a benign fault under DMON's fault model;
    #: slightly weakens §3.1's single-issue property, see DESIGN.md).
    reissue_lost_tokens: bool = True
    #: Rendezvous stall watchdog: re-arm with doubled timeout this many
    #: times before declaring the laggards faulted.
    stall_backoff_attempts: int = 3
    stall_backoff_max_ns: int = 8_000_000_000
    #: RB slot acquisition / record waits: bounded exponential backoff.
    rb_backoff_initial_ns: int = 2_000_000
    rb_backoff_max_ns: int = 64_000_000
    #: Total time a replica may wait on an RB peer with no progress
    #: before the peer is declared faulted.
    rb_wait_timeout_ns: int = 1_000_000_000

    def __post_init__(self):
        if self.min_quorum < 1:
            raise PolicyError("min_quorum must be at least 1")

    def classify_kind(self, kind: str) -> str:
        """Map a DivergenceReport kind to "benign" or "security"."""
        if kind == "crash":
            return "benign"
        if kind == "stall":
            return "benign" if self.stall_is_benign else "security"
        if kind == "link":
            # A broken monitor link says nothing about the replica's
            # integrity: route around it, don't fail-stop.
            return "benign"
        return "security"

    def classify(self, report) -> str:
        return self.classify_kind(getattr(report, "kind", "mismatch"))


def always_monitored(name: str) -> bool:
    """Is this call in the always-monitored class (resource/threads/
    signals/memory/fd management, paper §3.4)?"""
    for table in (UNCONDITIONAL, CONDITIONAL):
        for names in table.values():
            if name in names:
                return False
    return True
