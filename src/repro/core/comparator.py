"""Deep system-call argument comparison and serialization.

Two consumers share this logic:

* GHUMVEE compares the arguments of lockstepped calls across replicas
  before letting the master execute (CHECKREG / CHECKPOINTER /
  CHECKSTRING in the original code base);
* IP-MON's master deep-copies its arguments into the replication buffer
  and the slaves compare their own arguments against the recorded blob
  (paper §3, "this measure minimizes opportunities for asymmetrical
  attacks").

Pointer values legitimately differ between diversified replicas, so
pointers are compared by *shape* (NULL vs non-NULL) and their pointees by
*content*, never by raw address.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro.core.canonical import CANONICAL_ABI, AbiProfile, encode_for
from repro.core.digests import intern_digest
from repro.kernel.memory import MemoryFault
from repro.kernel.specs import SyscallSpec, spec_for
from repro.kernel.structs import read_iovecs


class ArgBlob:
    """One replica's serialized argument record."""

    __slots__ = ("name", "items", "nbytes", "abi", "_encoded", "_canonical")

    def __init__(
        self,
        name: str,
        items: List[Tuple[str, object]],
        nbytes: int,
        abi: Optional[AbiProfile] = None,
    ):
        self.name = name
        self.items = items
        self.nbytes = nbytes
        self.abi = abi if abi is not None else CANONICAL_ABI
        self._encoded: Optional[bytes] = None
        self._canonical: Optional[bytes] = None

    def encode(self) -> bytes:
        """This node's local byte encoding (what actually lands in the
        RB / guest memory) — laid out under the node's
        :class:`~repro.core.canonical.AbiProfile`.

        Memoized per instance: IP-MON sizes the record with it and the
        homogeneous digest path hashes it, so the bytes are built once.
        """
        cached = self._encoded
        if cached is not None:
            return cached
        cached = encode_for(self.name, self.items, self.abi)
        self._encoded = cached
        if self.abi.canonical:
            self._canonical = cached
        return cached

    def canonical(self) -> bytes:
        """The layout-independent canonical encoding (DESIGN.md §13):
        fixed scalar widths, zero padding — identical bytes for the
        same logical arguments under *any* node's ABI. On a canonical
        ABI this is the local encoding itself, shared memo and all."""
        cached = self._canonical
        if cached is not None:
            return cached
        if self.abi.canonical:
            return self.encode()
        cached = encode_for(self.name, self.items, CANONICAL_ABI)
        self._canonical = cached
        return cached

    def digest(self) -> int:
        """64-bit interned digest of the canonical encoding — shared
        MVEE-wide with the dist wire path via
        :func:`repro.core.digests.intern_digest`, so identical blobs
        hash once per round, not once per replica per node."""
        return intern_digest(self.name, self.canonical())

    def __eq__(self, other):
        return (
            isinstance(other, ArgBlob)
            and self.name == other.name
            and self.items == other.items
        )

    def __repr__(self):
        return "ArgBlob(%s, %d items, %d bytes)" % (self.name, len(self.items), self.nbytes)


def _resolve_length(length_source, args, result: Optional[int] = None) -> int:
    kind, value = length_source
    if kind == "fixed":
        return value
    if kind == "arg":
        return max(0, int(args[value])) if value < len(args) else 0
    if kind == "ret":
        return max(0, int(result or 0))
    raise ValueError("unknown length source %r" % (length_source,))


def serialize_args(
    req,
    space,
    spec: Optional[SyscallSpec] = None,
    abi: Optional[AbiProfile] = None,
) -> ArgBlob:
    """Deep-copy the *comparable content* of a call's arguments.

    Unknown syscalls degrade to comparing raw values. ``abi`` is the
    serializing node's layout profile; omitted, the record encodes in
    canonical form (the homogeneous/single-machine case).
    """
    spec = spec or spec_for(req.name)
    items: List[Tuple[str, object]] = []
    nbytes = 0
    if spec is None:
        for value in req.args:
            items.append(("reg", _raw(value)))
        return ArgBlob(req.name, items, nbytes, abi)
    for index, arg_spec in enumerate(spec.args):
        if index >= len(req.args):
            break
        value = req.args[index]
        kind = arg_spec.kind
        try:
            if kind in ("reg", "fd"):
                items.append((kind, _raw(value)))
            elif kind == "ptr":
                items.append(("ptr", bool(value)))
            elif kind == "callable":
                items.append(("callable", _callable_shape(value)))
            elif kind == "cstr":
                if not value:
                    items.append(("cstr", b""))
                else:
                    data = space.read_cstr(int(value))
                    items.append(("cstr", data))
                    nbytes += len(data)
            elif kind in ("buf_in", "struct_in"):
                if not value:
                    items.append(("buf", b""))
                else:
                    length = _resolve_length(arg_spec.length, req.args)
                    data = space.read(int(value), length) if length else b""
                    items.append(("buf", data))
                    nbytes += len(data)
            elif kind == "epoll_event_in":
                if not value:
                    items.append(("epev", b""))
                else:
                    raw = space.read(int(value), 4)  # events mask only
                    items.append(("epev", raw))
                    nbytes += 4
            elif kind == "iovec_in":
                if not value:
                    items.append(("iov", b""))
                else:
                    count = int(req.args[arg_spec.count_arg])
                    iovecs = read_iovecs(space, int(value), count)
                    data = b"".join(space.read(b, ln) for b, ln in iovecs)
                    items.append(("iov", data))
                    nbytes += len(data)
            elif kind in ("buf_out", "struct_out", "iovec_out"):
                items.append(("out", bool(value)))
            else:
                items.append(("reg", _raw(value)))
        except MemoryFault:
            items.append(("fault", int(value) != 0))
    return ArgBlob(req.name, items, nbytes, abi)


def _raw(value) -> int:
    if value is None:
        return 0
    if callable(value):
        return 1
    try:
        return int(value)
    except (TypeError, ValueError):
        # Builtin hash() is PYTHONHASHSEED-randomized for str/bytes, so
        # two replica *processes* would serialize different digests for
        # the same argument — a guaranteed false divergence. crc32 of
        # the repr is stable across processes and interpreter runs.
        return zlib.crc32(repr(value).encode("utf-8", "backslashreplace")) & 0xFFFFFFFF


def _callable_shape(value) -> int:
    """Code pointers differ across replicas (DCL); only their class
    matters: 0 = SIG_DFL/NULL, 1 = SIG_IGN, 2 = a real handler."""
    if value is None or value == 0:
        return 0
    if value == 1:
        return 1
    return 2


class Mismatch:
    """Description of a cross-replica argument mismatch."""

    def __init__(self, syscall: str, detail: str, index: Optional[int] = None,
                 replica: Optional[int] = None):
        self.syscall = syscall
        self.detail = detail
        self.index = index
        self.replica = replica

    def __repr__(self):
        return "Mismatch(%s: %s)" % (self.syscall, self.detail)


def compare_blobs(blobs: List[ArgBlob]) -> Optional[Mismatch]:
    """Compare serialized argument records from all replicas."""
    reference = blobs[0]
    for replica_index, blob in enumerate(blobs[1:], start=1):
        # Fast path: one C-level comparison settles the (overwhelmingly
        # common) all-equal case; the detailed per-item walk below only
        # runs to attribute an actual mismatch.
        if blob.name == reference.name and blob.items == reference.items:
            continue
        if blob.name != reference.name:
            return Mismatch(
                reference.name,
                "replica %d issued %s instead of %s"
                % (replica_index, blob.name, reference.name),
                replica=replica_index,
            )
        if len(blob.items) != len(reference.items):
            return Mismatch(
                reference.name,
                "replica %d passed %d args, expected %d"
                % (replica_index, len(blob.items), len(reference.items)),
                replica=replica_index,
            )
        for arg_index, (ref_item, item) in enumerate(zip(reference.items, blob.items)):
            if ref_item != item:
                return Mismatch(
                    reference.name,
                    "arg %d differs in replica %d: %r != %r"
                    % (arg_index, replica_index, _clip(item), _clip(ref_item)),
                    index=arg_index,
                    replica=replica_index,
                )
    return None


def _clip(item):
    kind, value = item
    if isinstance(value, bytes) and len(value) > 32:
        value = value[:32] + b"..."
    return (kind, value)


def compare_requests(reqs_and_spaces) -> Tuple[Optional[Mismatch], int]:
    """Full comparison pipeline: serialize every replica's args and
    compare. Returns (mismatch-or-None, bytes_compared)."""
    blobs = [serialize_args(req, space) for req, space in reqs_and_spaces]
    nbytes = sum(blob.nbytes for blob in blobs)
    return compare_blobs(blobs), nbytes
