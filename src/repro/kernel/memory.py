"""Byte-backed virtual address spaces for simulated processes.

Every replica owns a real :class:`AddressSpace`: buffers passed to system
calls are genuine virtual addresses into these spaces, so ASLR actually
moves data around, pointer arguments differ between replicas, and the
monitors must do the same deep copies the paper's monitors do.

Shared mappings (``MAP_SHARED``, System V shm — including IP-MON's
replication buffer) reference a common :class:`SharedRegion`, so a write
through one replica's mapping is visible through every other mapping of
the same region, at whatever (different) virtual address each replica
mapped it.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.errors import KernelError
from repro.kernel.constants import PAGE_MASK, PROT_EXEC, PROT_READ, PROT_WRITE


def page_align_down(addr: int) -> int:
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    return (addr + PAGE_MASK) & ~PAGE_MASK


class MemoryFault(Exception):
    """An access touched unmapped memory or violated page protections.

    The guest runtime converts this into a simulated SIGSEGV.
    """

    def __init__(self, addr: int, access: str, reason: str):
        super().__init__("%s fault at 0x%x: %s" % (access, addr, reason))
        self.addr = addr
        self.access = access
        self.reason = reason


class SharedRegion:
    """Backing store shared by multiple mappings (possibly cross-process)."""

    __slots__ = ("data", "name", "attach_count")

    def __init__(self, length: int, name: str = "shared"):
        self.data = bytearray(length)
        self.name = name
        self.attach_count = 0

    def __len__(self):
        return len(self.data)


class Mapping:
    """One contiguous mapped region of an address space."""

    __slots__ = ("start", "length", "prot", "name", "region", "region_offset", "shared")

    def __init__(
        self,
        start: int,
        length: int,
        prot: int,
        name: str,
        region: SharedRegion,
        region_offset: int = 0,
        shared: bool = False,
    ):
        self.start = start
        self.length = length
        self.prot = prot
        self.name = name
        self.region = region
        self.region_offset = region_offset
        self.shared = shared

    @property
    def end(self) -> int:
        return self.start + self.length

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self):
        return "%012x-%012x %s %s" % (
            self.start,
            self.end,
            prot_str(self.prot),
            self.name,
        )


def prot_str(prot: int) -> str:
    return (
        ("r" if prot & PROT_READ else "-")
        + ("w" if prot & PROT_WRITE else "-")
        + ("x" if prot & PROT_EXEC else "-")
        + "p"
    )


class AddressSpace:
    """A sparse 47-bit virtual address space backed by bytearrays.

    Args:
        mmap_base: top of the mmap allocation area; fresh anonymous
            mappings are placed downward from here. Diversified replicas
            get different bases from :mod:`repro.diversity.aslr`.
        brk_base: start of the heap grown by ``brk``.
    """

    ADDR_LIMIT = 1 << 47

    def __init__(self, mmap_base: int, brk_base: int, name: str = "as"):
        if mmap_base & PAGE_MASK or brk_base & PAGE_MASK:
            raise KernelError("address space bases must be page aligned")
        self.name = name
        self.mmap_base = mmap_base
        self.brk_base = brk_base
        self.brk_current = brk_base
        self._mappings: List[Mapping] = []  # sorted by start
        self._starts: List[int] = []
        self._mmap_hint = mmap_base

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_mapping(self, addr: int) -> Optional[Mapping]:
        """Return the mapping containing ``addr``, or None."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0:
            mapping = self._mappings[idx]
            if mapping.contains(addr):
                return mapping
        return None

    def mappings(self) -> List[Mapping]:
        """All mappings, sorted by start address."""
        return list(self._mappings)

    def maps_text(self) -> str:
        """Render the /proc/<pid>/maps view of this address space."""
        return "\n".join(repr(m) for m in self._mappings) + "\n"

    # ------------------------------------------------------------------
    # Mapping management
    # ------------------------------------------------------------------
    def _insert(self, mapping: Mapping) -> None:
        idx = bisect.bisect_left(self._starts, mapping.start)
        self._mappings.insert(idx, mapping)
        self._starts.insert(idx, mapping.start)
        mapping.region.attach_count += 1

    def _remove(self, mapping: Mapping) -> None:
        idx = self._starts.index(mapping.start)
        del self._mappings[idx]
        del self._starts[idx]
        mapping.region.attach_count -= 1

    def _overlaps(self, start: int, length: int) -> List[Mapping]:
        end = start + length
        out = []
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx < 0:
            idx = 0
        for mapping in self._mappings[idx:]:
            if mapping.start >= end:
                break
            if mapping.end > start:
                out.append(mapping)
        return out

    def find_free(self, length: int) -> int:
        """Find a free region of ``length`` bytes, searching downward from
        the mmap base (mimicking Linux's top-down mmap layout)."""
        length = page_align_up(length)
        candidate = self._mmap_hint - length
        while candidate > 0:
            hits = self._overlaps(candidate, length)
            if not hits:
                self._mmap_hint = candidate
                return candidate
            candidate = page_align_down(min(m.start for m in hits) - length)
        raise KernelError("address space exhausted in %s" % self.name)

    def map(
        self,
        addr: Optional[int],
        length: int,
        prot: int,
        name: str = "anon",
        region: Optional[SharedRegion] = None,
        region_offset: int = 0,
        shared: bool = False,
        fixed: bool = False,
    ) -> Mapping:
        """Create a mapping and return it.

        With ``fixed`` true, any overlapping mappings are clobbered
        (MAP_FIXED semantics); otherwise ``addr`` is only a hint and a
        free range is chosen when it is absent or unusable.
        """
        if length <= 0:
            raise KernelError("mapping length must be positive")
        length = page_align_up(length)
        if addr is not None:
            addr = page_align_down(addr)
        if fixed:
            if addr is None:
                raise KernelError("MAP_FIXED requires an address")
            for victim in self._overlaps(addr, length):
                self._unmap_range_from(victim, addr, length)
        elif addr is None or self._overlaps(addr, length):
            addr = self.find_free(length)
        if region is None:
            region = SharedRegion(length, name)
        mapping = Mapping(addr, length, prot, name, region, region_offset, shared)
        self._insert(mapping)
        return mapping

    def unmap(self, addr: int, length: int) -> None:
        """Remove mappings in [addr, addr+length), splitting at the edges."""
        addr = page_align_down(addr)
        length = page_align_up(length)
        for victim in self._overlaps(addr, length):
            self._unmap_range_from(victim, addr, length)

    def _unmap_range_from(self, mapping: Mapping, addr: int, length: int) -> None:
        end = addr + length
        self._remove(mapping)
        # Left remainder
        if mapping.start < addr:
            left_len = addr - mapping.start
            self._insert(
                Mapping(
                    mapping.start,
                    left_len,
                    mapping.prot,
                    mapping.name,
                    mapping.region,
                    mapping.region_offset,
                    mapping.shared,
                )
            )
        # Right remainder
        if mapping.end > end:
            right_len = mapping.end - end
            self._insert(
                Mapping(
                    end,
                    right_len,
                    mapping.prot,
                    mapping.name,
                    mapping.region,
                    mapping.region_offset + (end - mapping.start),
                    mapping.shared,
                )
            )

    def protect(self, addr: int, length: int, prot: int) -> int:
        """Change protections on [addr, addr+length); returns 0 or raises."""
        addr = page_align_down(addr)
        length = page_align_up(length)
        victims = self._overlaps(addr, length)
        if not victims:
            raise MemoryFault(addr, "mprotect", "no mapping in range")
        end = addr + length
        for mapping in victims:
            if mapping.start >= addr and mapping.end <= end:
                mapping.prot = prot
                continue
            # Split: carve out the protected part.
            lo = max(mapping.start, addr)
            hi = min(mapping.end, end)
            self._remove(mapping)
            pieces = []
            if mapping.start < lo:
                pieces.append((mapping.start, lo - mapping.start, mapping.prot))
            pieces.append((lo, hi - lo, prot))
            if mapping.end > hi:
                pieces.append((hi, mapping.end - hi, mapping.prot))
            for start, plen, pprot in pieces:
                self._insert(
                    Mapping(
                        start,
                        plen,
                        pprot,
                        mapping.name,
                        mapping.region,
                        mapping.region_offset + (start - mapping.start),
                        mapping.shared,
                    )
                )
        return 0

    def brk(self, new_brk: int) -> int:
        """Grow or shrink the heap; returns the (possibly unchanged) brk."""
        if new_brk <= self.brk_base:
            return self.brk_current
        new_brk = page_align_up(new_brk)
        if new_brk > self.brk_current:
            length = new_brk - self.brk_current
            if self._overlaps(self.brk_current, length):
                return self.brk_current
            self.map(
                self.brk_current,
                length,
                PROT_READ | PROT_WRITE,
                name="[heap]",
                fixed=True,
            )
        self.brk_current = new_brk
        return self.brk_current

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, addr: int, length: int, check_prot: bool = True) -> bytes:
        """Read ``length`` bytes at ``addr`` (gathering across contiguous
        mappings). Raises :class:`MemoryFault` on a hole or a PROT_NONE
        page when ``check_prot`` is set."""
        if length == 0:
            return b""
        out = bytearray()
        cursor = addr
        remaining = length
        while remaining > 0:
            mapping = self.find_mapping(cursor)
            if mapping is None:
                raise MemoryFault(cursor, "read", "unmapped address")
            if check_prot and not mapping.prot & PROT_READ:
                raise MemoryFault(cursor, "read", "page not readable")
            offset = mapping.region_offset + (cursor - mapping.start)
            take = min(remaining, mapping.end - cursor)
            out += mapping.region.data[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes, check_prot: bool = True) -> None:
        """Write ``data`` at ``addr``; raises :class:`MemoryFault` on a
        hole or a read-only page when ``check_prot`` is set."""
        if not data:
            return
        cursor = addr
        view = memoryview(bytes(data))
        remaining = len(view)
        consumed = 0
        while remaining > 0:
            mapping = self.find_mapping(cursor)
            if mapping is None:
                raise MemoryFault(cursor, "write", "unmapped address")
            if check_prot and not mapping.prot & PROT_WRITE:
                raise MemoryFault(cursor, "write", "page not writable")
            offset = mapping.region_offset + (cursor - mapping.start)
            take = min(remaining, mapping.end - cursor)
            mapping.region.data[offset : offset + take] = view[
                consumed : consumed + take
            ]
            cursor += take
            remaining -= take
            consumed += take

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (1 << 64) - 1).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_cstr(self, addr: int, maxlen: int = 4096) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        cursor = addr
        while len(out) < maxlen:
            chunk = self.read(cursor, min(64, maxlen - len(out)))
            nul = chunk.find(b"\x00")
            if nul >= 0:
                out += chunk[:nul]
                return bytes(out)
            out += chunk
            cursor += len(chunk)
        return bytes(out)

    def is_mapped(self, addr: int, length: int = 1) -> bool:
        """True when every byte of [addr, addr+length) is mapped."""
        cursor = addr
        end = addr + max(1, length)
        while cursor < end:
            mapping = self.find_mapping(cursor)
            if mapping is None:
                return False
            cursor = mapping.end
        return True

    def total_mapped(self) -> int:
        return sum(m.length for m in self._mappings)
