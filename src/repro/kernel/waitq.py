"""Wait queues: the kernel's building block for blocking operations.

A :class:`WaitQueue` hands each waiter a fresh one-shot event; resources
(pipes, sockets, futex buckets, epoll instances) fire some or all of
those events when their state changes. Signals interrupt a blocked
thread by firing the same per-wait event with the :data:`INTERRUPTED`
sentinel, which the kernel's blocking helpers translate to ``-EINTR``.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim import Event

#: Sentinel delivered to a waiter when a signal interrupts the wait.
INTERRUPTED = object()


class WaitQueue:
    """A list of pending one-shot events, one per blocked waiter."""

    __slots__ = ("name", "_events")

    def __init__(self, name: str = "waitq"):
        self.name = name
        self._events: List[Event] = []

    def register(self) -> Event:
        """Add a waiter; returns the event it should wait on."""
        event = Event(self.name)
        self._events.append(event)
        return event

    def unregister(self, event: Event) -> None:
        try:
            self._events.remove(event)
        except ValueError:
            pass

    def notify(self, sim, count: int, value: Any = None) -> int:
        """Wake up to ``count`` waiters; returns how many were woken."""
        woken = 0
        remaining: List[Event] = []
        for event in self._events:
            if event.fired:
                continue
            if woken < count:
                sim.fire(event, value)
                woken += 1
            else:
                remaining.append(event)
        self._events = remaining
        return woken

    def notify_all(self, sim, value: Any = None) -> int:
        return self.notify(sim, len(self._events), value)

    def __len__(self) -> int:
        return sum(1 for event in self._events if not event.fired)


def wait_interruptible(thread, event: Event, timeout_ns: Optional[int] = None):
    """Block ``thread`` on ``event`` until it fires, times out, or a
    signal arrives.

    Yields simulator effects; returns one of the strings ``"fired"``,
    ``"timeout"`` or ``"interrupted"`` paired with the event value.
    """
    thread.begin_interruptible(event)
    try:
        from repro.sim import WaitEvent

        fired, value = yield WaitEvent(event, timeout_ns)
    finally:
        thread.end_interruptible(event)
    if not fired:
        return "timeout", None
    if value is INTERRUPTED:
        return "interrupted", None
    return "fired", value
