"""epoll instances (paper §3.9).

Level-triggered epoll keyed by fd, carrying the userspace ``data`` field
(usually a pointer in real programs — which is exactly what makes epoll
hard for MVEEs and forces IP-MON's shadow mapping).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.vfs import FileObject
from repro.kernel.waitq import wait_interruptible


class EpollInstance(FileObject):
    kind = "epoll"

    def __init__(self, name: str = "epoll"):
        super().__init__(name)
        # fd -> (requested events mask, u64 data, watched FileObject)
        self.interest: Dict[int, Tuple[int, int, FileObject]] = {}

    def ctl(self, op: int, fd: int, events: int, data: int, file: FileObject) -> int:
        if op == C.EPOLL_CTL_ADD:
            if fd in self.interest:
                return -E.EEXIST
            self.interest[fd] = (events, data, file)
            return 0
        if op == C.EPOLL_CTL_MOD:
            if fd not in self.interest:
                return -E.ENOENT
            self.interest[fd] = (events, data, file)
            return 0
        if op == C.EPOLL_CTL_DEL:
            if fd not in self.interest:
                return -E.ENOENT
            del self.interest[fd]
            return 0
        return -E.EINVAL

    def forget_fd(self, fd: int) -> None:
        self.interest.pop(fd, None)

    def ready_events(self, kernel) -> List[Tuple[int, int, int]]:
        """Scan the interest list; returns [(fd, revents, data)]."""
        out = []
        for fd, (want, data, file) in sorted(self.interest.items()):
            mask = file.poll_mask(kernel)
            hit = mask & (want | C.EPOLLERR | C.EPOLLHUP)
            if hit:
                out.append((fd, hit, data))
        return out

    def wait(self, kernel, thread, maxevents: int, timeout_ns):
        """Coroutine: block until >=1 watched fd is ready (or timeout).

        Returns a list of (fd, revents, data) tuples, possibly empty on
        timeout, or -EINTR.
        """
        while True:
            ready = self.ready_events(kernel)
            if ready:
                return ready[:maxevents]
            if timeout_ns == 0:
                return []
            # Register on every watched object plus our own queue (for
            # EPOLL_CTL_ADD while blocked).
            events = []
            own = self.pollq.register()
            events.append((self.pollq, own))
            for _fd, (_want, _data, file) in self.interest.items():
                ev = file.pollq.register()
                events.append((file.pollq, ev))
            # Wait on a merged event: fire the first queue event that
            # fires into a single fresh event via adapter tasks would be
            # heavy; instead we wait on our own event and have the kernel
            # poke it, so register a lightweight forwarder.
            merged = kernel.merge_events([ev for _q, ev in events])
            status, _ = yield from wait_interruptible(thread, merged, timeout_ns)
            for queue, ev in events:
                queue.unregister(ev)
            if status == "interrupted":
                return -E.EINTR
            if status == "timeout":
                ready = self.ready_events(kernel)
                return ready[:maxevents]

    def poll_mask(self, kernel) -> int:
        return C.POLLIN if self.ready_events(kernel) else 0
