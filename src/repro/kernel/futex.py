"""futex(2): fast userspace mutexes over guest memory words.

Futex keys are derived from the *backing region* of the address, so a
futex word inside a MAP_SHARED region (such as IP-MON's replication
buffer) is correctly shared across processes even though each replica
maps the region at a different virtual address — this is what makes the
paper's cross-replica condition variables (§3.7) work.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kernel import errno_codes as E
from repro.kernel.memory import AddressSpace, MemoryFault
from repro.kernel.waitq import WaitQueue, wait_interruptible


class FutexManager:
    def __init__(self):
        self._buckets: Dict[Tuple[int, int], WaitQueue] = {}
        # Counters exposed to the cost model / benchmarks.
        self.wait_count = 0
        self.wake_count = 0
        self.wakeups_delivered = 0

    def key_for(self, space: AddressSpace, uaddr: int):
        mapping = space.find_mapping(uaddr)
        if mapping is None:
            return None
        return (id(mapping.region), mapping.region_offset + (uaddr - mapping.start))

    def _bucket(self, key) -> WaitQueue:
        queue = self._buckets.get(key)
        if queue is None:
            queue = WaitQueue("futex")
            self._buckets[key] = queue
        return queue

    def wait(self, kernel, thread, space: AddressSpace, uaddr: int, expected: int, timeout_ns=None):
        """Coroutine: FUTEX_WAIT semantics; returns 0/-errno."""
        key = self.key_for(space, uaddr)
        if key is None:
            return -E.EFAULT
        try:
            current = space.read_u32(uaddr)
        except MemoryFault:
            return -E.EFAULT
        if current != expected & 0xFFFFFFFF:
            return -E.EAGAIN
        self.wait_count += 1
        queue = self._bucket(key)
        event = queue.register()
        status, _ = yield from wait_interruptible(thread, event, timeout_ns)
        if status == "interrupted":
            queue.unregister(event)
            return -E.EINTR
        if status == "timeout":
            queue.unregister(event)
            return -E.ETIMEDOUT
        return 0

    def wake(self, space: AddressSpace, uaddr: int, count: int, sim) -> int:
        """FUTEX_WAKE semantics; returns number of waiters woken."""
        key = self.key_for(space, uaddr)
        if key is None:
            return -E.EFAULT
        self.wake_count += 1
        queue = self._buckets.get(key)
        if queue is None:
            return 0
        woken = queue.notify(sim, count)
        self.wakeups_delivered += woken
        return woken

    def waiters(self, space: AddressSpace, uaddr: int) -> int:
        """How many threads currently wait on this word (introspection —
        used by IP-MON's 'skip FUTEX_WAKE when nobody waits' optimization)."""
        key = self.key_for(space, uaddr)
        if key is None:
            return 0
        queue = self._buckets.get(key)
        return len(queue) if queue is not None else 0
