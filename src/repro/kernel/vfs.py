"""Virtual filesystem: file objects, descriptions, and an in-memory tree.

The file-object model mirrors Linux: a *file object* (inode-like entity,
possibly shared between processes), an *open file description* carrying
the offset and status flags, and per-process descriptor tables pointing
at descriptions. This split matters to the MVEE: GHUMVEE's fd metadata
and IP-MON's file map (paper §3.6) track exactly this structure.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.structs import pack_stat
from repro.kernel.waitq import WaitQueue

_ino_counter = itertools.count(2)


class FileObject:
    """Base class for everything a descriptor can point at.

    ``kind`` is one of ``reg``, ``dir``, ``symlink``, ``chr``, ``pipe``,
    ``sock``, ``listen``, ``epoll``, ``timerfd``, ``special`` — the same
    classification GHUMVEE keeps in its fd metadata table.
    """

    kind = "reg"

    def __init__(self, name: str = ""):
        self.name = name
        self.ino = next(_ino_counter)
        self.refcount = 0
        self.pollq = WaitQueue("poll:%s" % name)

    # -- lifecycle -------------------------------------------------------
    def release(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0:
            self.on_last_close()

    def on_last_close(self) -> None:
        """Called when the last description referencing this object dies."""

    # -- readiness -------------------------------------------------------
    def poll_mask(self, kernel) -> int:
        """Current poll/epoll readiness bits."""
        return C.POLLIN | C.POLLOUT

    def notify_pollers(self, kernel) -> None:
        """Wake everything waiting for a readiness change on this object."""
        self.pollq.notify_all(kernel.sim)

    # -- I/O ---------------------------------------------------------------
    # Subclasses override; default is "not supported".
    def read(self, kernel, thread, ofd, count: int):
        return -E.EINVAL
        yield  # pragma: no cover - makes this a generator

    def write(self, kernel, thread, ofd, data: bytes):
        return -E.EINVAL
        yield  # pragma: no cover

    # -- metadata ----------------------------------------------------------
    def st_mode(self) -> int:
        return C.S_IFREG | 0o644

    def size(self) -> int:
        return 0

    def stat_bytes(self) -> bytes:
        return pack_stat(
            st_dev=1,
            st_ino=self.ino,
            st_mode=self.st_mode(),
            st_nlink=1,
            st_uid=0,
            st_gid=0,
            st_size=self.size(),
        )

    def __repr__(self):
        return "%s(%s, ino=%d)" % (type(self).__name__, self.name, self.ino)


class OpenFileDescription:
    """Offset + status flags shared by dup()ed descriptors."""

    __slots__ = ("file", "offset", "flags", "refcount")

    def __init__(self, file: FileObject, flags: int = 0):
        self.file = file
        self.offset = 0
        self.flags = flags
        self.refcount = 0
        file.refcount += 1

    @property
    def nonblocking(self) -> bool:
        return bool(self.flags & C.O_NONBLOCK)

    @property
    def readable(self) -> bool:
        return (self.flags & C.O_ACCMODE) in (C.O_RDONLY, C.O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & C.O_ACCMODE) in (C.O_WRONLY, C.O_RDWR)

    def release(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0:
            self.file.release()

    def __repr__(self):
        return "OFD(%r, off=%d, flags=%o)" % (self.file, self.offset, self.flags)


# ---------------------------------------------------------------------------
# Concrete filesystem nodes
# ---------------------------------------------------------------------------
class RegularFile(FileObject):
    kind = "reg"

    def __init__(self, name: str = "", data: bytes = b""):
        super().__init__(name)
        self.data = bytearray(data)
        self.xattrs: Dict[bytes, bytes] = {}

    def st_mode(self) -> int:
        return C.S_IFREG | 0o644

    def size(self) -> int:
        return len(self.data)

    def read(self, kernel, thread, ofd, count: int):
        start = ofd.offset
        chunk = bytes(self.data[start : start + count])
        ofd.offset += len(chunk)
        return chunk
        yield  # pragma: no cover

    def pread(self, offset: int, count: int) -> bytes:
        return bytes(self.data[offset : offset + count])

    def write(self, kernel, thread, ofd, data: bytes):
        if ofd.flags & C.O_APPEND:
            ofd.offset = len(self.data)
        self.pwrite(ofd.offset, data)
        ofd.offset += len(data)
        return len(data)
        yield  # pragma: no cover

    def pwrite(self, offset: int, data: bytes) -> int:
        end = offset + len(data)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[offset:end] = data
        return len(data)

    def truncate(self, length: int) -> None:
        if length < len(self.data):
            del self.data[length:]
        else:
            self.data.extend(b"\x00" * (length - len(self.data)))


class Directory(FileObject):
    kind = "dir"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.children: Dict[str, FileObject] = {}

    def st_mode(self) -> int:
        return C.S_IFDIR | 0o755

    def size(self) -> int:
        return 4096

    def entries(self) -> List[Tuple[str, FileObject]]:
        return sorted(self.children.items())


class Symlink(FileObject):
    kind = "symlink"

    def __init__(self, name: str, target: str):
        super().__init__(name)
        self.target = target

    def st_mode(self) -> int:
        return C.S_IFLNK | 0o777

    def size(self) -> int:
        return len(self.target)


class CharDevice(FileObject):
    """/dev/null, /dev/zero and a deterministic /dev/urandom."""

    kind = "chr"

    def __init__(self, name: str, mode: str, seed: int = 0):
        super().__init__(name)
        self.mode = mode
        self._state = seed or 0x9E3779B97F4A7C15

    def st_mode(self) -> int:
        return C.S_IFCHR | 0o666

    def _next_bytes(self, count: int) -> bytes:
        out = bytearray()
        state = self._state
        while len(out) < count:
            state = (state * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
            out += state.to_bytes(8, "little")
        self._state = state
        return bytes(out[:count])

    def read(self, kernel, thread, ofd, count: int):
        if self.mode == "null":
            return b""
        if self.mode == "zero":
            return b"\x00" * count
        return self._next_bytes(count)
        yield  # pragma: no cover

    def write(self, kernel, thread, ofd, data: bytes):
        return len(data)
        yield  # pragma: no cover


class ConsoleFile(FileObject):
    """Per-process stdout/stderr sink capturing output for inspection."""

    kind = "chr"

    def __init__(self, owner: str = ""):
        super().__init__("console:%s" % owner)
        self.output = bytearray()

    def st_mode(self) -> int:
        return C.S_IFCHR | 0o620

    def size(self) -> int:
        return len(self.output)

    def poll_mask(self, kernel) -> int:
        return C.POLLOUT

    def read(self, kernel, thread, ofd, count: int):
        return -E.EBADF
        yield  # pragma: no cover

    def write(self, kernel, thread, ofd, data: bytes):
        self.output += data
        return len(data)
        yield  # pragma: no cover

    def text(self) -> str:
        return self.output.decode("utf-8", "replace")


class SyntheticFile(FileObject):
    """A read-only file whose content is produced by a callable at open
    time — used for /proc entries such as ``/proc/<pid>/maps``.

    GHUMVEE marks these *special* (paper §3.1/§3.6) and forcibly monitors
    every access so it can filter the data replicas read.
    """

    kind = "special"

    def __init__(self, name: str, producer):
        super().__init__(name)
        self.producer = producer
        self.snapshot: Optional[bytes] = None

    def st_mode(self) -> int:
        return C.S_IFREG | 0o444

    def content(self) -> bytes:
        if self.snapshot is None:
            self.snapshot = self.producer()
        return self.snapshot

    def read(self, kernel, thread, ofd, count: int):
        data = self.content()
        chunk = data[ofd.offset : ofd.offset + count]
        ofd.offset += len(chunk)
        return bytes(chunk)
        yield  # pragma: no cover


# ---------------------------------------------------------------------------
# Filesystem tree + path resolution
# ---------------------------------------------------------------------------
class Filesystem:
    """An in-memory tree with POSIX-ish path resolution."""

    MAX_SYMLINK_DEPTH = 8

    def __init__(self):
        self.root = Directory("/")
        self.root.refcount = 1  # never reaped
        for path in ("/tmp", "/etc", "/dev", "/proc", "/data", "/var", "/var/www"):
            self.mkdir(path)
        self.add_file("/dev/null", CharDevice("null", "null"))
        self.add_file("/dev/zero", CharDevice("zero", "zero"))
        self.add_file("/dev/urandom", CharDevice("urandom", "urandom"))

    # -- construction helpers -------------------------------------------
    def mkdir(self, path: str) -> Directory:
        parts = [p for p in path.split("/") if p]
        node = self.root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                child = Directory(part)
                child.refcount = 1
                node.children[part] = child
            if not isinstance(child, Directory):
                raise NotADirectoryError(path)
            node = child
        return node

    def add_file(self, path: str, node: FileObject) -> FileObject:
        dirname, _, basename = path.rpartition("/")
        parent = self.mkdir(dirname or "/")
        node.name = basename
        node.refcount = 1  # pinned by the directory entry
        parent.children[basename] = node
        return node

    def write_file(self, path: str, data: bytes) -> RegularFile:
        node = RegularFile(data=data)
        self.add_file(path, node)
        return node

    def symlink(self, path: str, target: str) -> Symlink:
        node = Symlink("", target)
        self.add_file(path, node)
        return node

    # -- resolution --------------------------------------------------------
    def resolve(
        self, path: str, cwd: str = "/", follow: bool = True, _depth: int = 0
    ) -> Tuple[Optional[FileObject], int]:
        """Resolve ``path`` relative to ``cwd``.

        Returns ``(node, 0)`` on success or ``(None, errno)`` on failure.
        """
        if _depth > self.MAX_SYMLINK_DEPTH:
            return None, E.ELOOP
        if not path:
            return None, E.ENOENT
        if not path.startswith("/"):
            path = cwd.rstrip("/") + "/" + path
        parts = [p for p in path.split("/") if p and p != "."]
        node: FileObject = self.root
        for index, part in enumerate(parts):
            if not isinstance(node, Directory):
                return None, E.ENOTDIR
            if part == "..":
                # Minimal semantics: stay at root (no parent pointers).
                continue
            child = node.children.get(part)
            if child is None:
                return None, E.ENOENT
            is_last = index == len(parts) - 1
            if isinstance(child, Symlink) and (follow or not is_last):
                rest = "/".join(parts[index + 1 :])
                target = child.target
                if rest:
                    target = target.rstrip("/") + "/" + rest
                return self.resolve(target, cwd="/", follow=follow, _depth=_depth + 1)
            node = child
        return node, 0

    def parent_of(self, path: str, cwd: str = "/") -> Tuple[Optional[Directory], str, int]:
        """Resolve the parent directory of ``path``; returns
        ``(dir, basename, errno)``."""
        if not path.startswith("/"):
            path = cwd.rstrip("/") + "/" + path
        dirname, _, basename = path.rstrip("/").rpartition("/")
        if not basename:
            return None, "", E.EINVAL
        node, err = self.resolve(dirname or "/")
        if node is None:
            return None, "", err
        if not isinstance(node, Directory):
            return None, "", E.ENOTDIR
        return node, basename, 0
