"""Stream sockets over a simulated network with configurable latency.

The network is the netem analogue from the paper's server evaluation
(§5.2): a single switch connecting all simulated hosts, applying a
configurable one-way latency to every segment. Loopback traffic (a
socket connecting to its own host) bypasses the latency, mirroring the
network-loopback Phoronix benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.vfs import FileObject
from repro.kernel.waitq import WaitQueue, wait_interruptible
from repro.sim import Sleep

Address = Tuple[str, int]

SOCKET_RCVBUF = 1 << 20


class Network:
    """A single-switch network shared by every simulated host.

    Beyond the base one-way ``latency_ns``, links may model a serialisation
    delay (``bandwidth_bps``) and bounded random jitter (``jitter_ns``), both
    globally and per host pair via :meth:`set_link`. Loopback traffic is
    exempt from bandwidth and jitter. Jitter is drawn from a seeded LCG so
    runs stay deterministic, and :meth:`transmit` clamps delivery times so
    jitter never reorders segments within a directed host pair.

    WAN fault knobs — ``loss_prob``, ``dup_prob``, ``reorder_prob`` — make
    the wire imperfect: a lost segment is billed but never delivered, a
    duplicated one arrives twice, a reordered one is held back past the
    FIFO clamp so later segments can overtake it. Fault draws come from
    their *own* seeded LCG (``fault_seed``), never the jitter stream, so a
    run with every probability at zero consumes the exact jitter sequence
    — and therefore the exact timing — of a run predating the fault model.
    Probabilities may also be set per unordered pair via :meth:`set_link`
    or per *directed* pair via :meth:`set_link_directed` (the granularity
    :class:`~repro.faults.LinkDegradeFault` degrades at). Callers that
    model an already-reliable protocol (guest TCP streams) pass
    ``faults=False`` to :meth:`transmit` and keep a perfect wire.
    """

    def __init__(self, latency_ns: int = 100_000, loopback_latency_ns: int = 5_000,
                 bandwidth_bps: Optional[float] = None, jitter_ns: int = 0,
                 jitter_seed: int = 0x5EED, loss_prob: float = 0.0,
                 dup_prob: float = 0.0, reorder_prob: float = 0.0,
                 fault_seed: int = 0xFA17):
        self.latency_ns = latency_ns
        self.loopback_latency_ns = loopback_latency_ns
        self.bandwidth_bps = bandwidth_bps
        self.jitter_ns = jitter_ns
        self.loss_prob = loss_prob
        self.dup_prob = dup_prob
        self.reorder_prob = reorder_prob
        self.listeners: Dict[Address, "ListeningSocket"] = {}
        self._ephemeral = 32768
        self._links: Dict[frozenset, Dict[str, object]] = {}
        self._directed: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._fifo_clock: Dict[Tuple[str, str], int] = {}
        self._jitter_state = (jitter_seed & 0xFFFFFFFFFFFFFFFF) or 1
        self._fault_state = (fault_seed & 0xFFFFFFFFFFFFFFFF) or 1
        # Counters used by benchmarks to report on-the-wire volume.
        self.bytes_sent = 0
        self.segments_sent = 0
        self.segments_lost = 0
        self.segments_duplicated = 0
        self.segments_reordered = 0

    def ephemeral_port(self) -> int:
        self._ephemeral += 1
        return self._ephemeral

    # -- link model -------------------------------------------------------
    def set_link(self, a_ip: str, b_ip: str, latency_ns: Optional[int] = None,
                 bandwidth_bps: Optional[float] = None,
                 jitter_ns: Optional[int] = None,
                 loss_prob: Optional[float] = None,
                 dup_prob: Optional[float] = None,
                 reorder_prob: Optional[float] = None) -> None:
        """Override link parameters for the (unordered) host pair."""
        override = self._links.setdefault(frozenset((a_ip, b_ip)), {})
        for key, value in (
            ("latency_ns", latency_ns),
            ("bandwidth_bps", bandwidth_bps),
            ("jitter_ns", jitter_ns),
            ("loss_prob", loss_prob),
            ("dup_prob", dup_prob),
            ("reorder_prob", reorder_prob),
        ):
            if value is not None:
                override[key] = value

    def set_link_directed(self, src_ip: str, dst_ip: str,
                          latency_ns: Optional[int] = None,
                          bandwidth_bps: Optional[float] = None,
                          jitter_ns: Optional[int] = None,
                          loss_prob: Optional[float] = None,
                          dup_prob: Optional[float] = None,
                          reorder_prob: Optional[float] = None) -> Dict:
        """Override parameters for one *directed* link (src -> dst only);
        directed overrides win over pair overrides and globals. Returns a
        snapshot of the previous directed override so a caller degrading
        the link for a window can restore it exactly afterwards (see
        :meth:`replace_link_directed`)."""
        key = (src_ip, dst_ip)
        snapshot = dict(self._directed.get(key, {}))
        override = self._directed.setdefault(key, {})
        for name, value in (
            ("latency_ns", latency_ns),
            ("bandwidth_bps", bandwidth_bps),
            ("jitter_ns", jitter_ns),
            ("loss_prob", loss_prob),
            ("dup_prob", dup_prob),
            ("reorder_prob", reorder_prob),
        ):
            if value is not None:
                override[name] = value
        return snapshot

    def replace_link_directed(self, src_ip: str, dst_ip: str,
                              override: Dict) -> None:
        """Restore a directed override to a snapshot taken earlier."""
        if override:
            self._directed[(src_ip, dst_ip)] = dict(override)
        else:
            self._directed.pop((src_ip, dst_ip), None)

    def _link_value(self, src_ip: str, dst_ip: str, key: str):
        directed = self._directed.get((src_ip, dst_ip))
        if directed is not None and key in directed:
            return directed[key]
        override = self._links.get(frozenset((src_ip, dst_ip)))
        if override is not None and key in override:
            return override[key]
        return getattr(self, key)

    def link_params(self, a_ip: str, b_ip: str):
        """Effective (latency_ns, bandwidth_bps, jitter_ns) for a host pair."""
        return (
            self._link_value(a_ip, b_ip, "latency_ns"),
            self._link_value(a_ip, b_ip, "bandwidth_bps"),
            self._link_value(a_ip, b_ip, "jitter_ns"),
        )

    def link_faults(self, src_ip: str, dst_ip: str):
        """Effective (loss_prob, dup_prob, reorder_prob) for a directed
        link — the directed override wins, then the pair, then globals."""
        return (
            self._link_value(src_ip, dst_ip, "loss_prob"),
            self._link_value(src_ip, dst_ip, "dup_prob"),
            self._link_value(src_ip, dst_ip, "reorder_prob"),
        )

    def lossy(self) -> bool:
        """True if any global or per-link fault probability is nonzero
        (the auto-enable signal for the reliable transport layer)."""
        if self.loss_prob or self.dup_prob or self.reorder_prob:
            return True
        knobs = ("loss_prob", "dup_prob", "reorder_prob")
        for override in self._links.values():
            if any(override.get(k) for k in knobs):
                return True
        for override in self._directed.values():
            if any(override.get(k) for k in knobs):
                return True
        return False

    def _next_jitter(self) -> int:
        self._jitter_state = (
            self._jitter_state * 6364136223846793005 + 1442695040888963407
        ) & 0xFFFFFFFFFFFFFFFF
        return self._jitter_state >> 33

    def _next_fault(self) -> float:
        """A fault-lane draw in [0, 1); a separate LCG from jitter so
        zero-probability runs never perturb the jitter sequence."""
        self._fault_state = (
            self._fault_state * 6364136223846793005 + 1442695040888963407
        ) & 0xFFFFFFFFFFFFFFFF
        return (self._fault_state >> 11) / float(1 << 53)

    def delay_between(self, a: Address, b: Address) -> int:
        if a[0] == b[0]:
            return self.loopback_latency_ns
        return self.link_params(a[0], b[0])[0]

    def delay_for(self, a: Address, b: Address, nbytes: int = 0) -> int:
        """One-way delay for an ``nbytes``-byte segment: latency plus
        serialisation time plus jitter (loopback pays only latency)."""
        if a[0] == b[0]:
            return self.loopback_latency_ns
        latency, bandwidth, jitter = self.link_params(a[0], b[0])
        delay = latency
        if bandwidth:
            delay += int(nbytes * 8 * 1e9 / bandwidth)
        if jitter:
            delay += self._next_jitter() % (int(jitter) + 1)
        return delay

    def transmit(self, sim, src: Address, dst: Address, nbytes: int,
                 deliver, *args, count: bool = True,
                 faults: bool = True) -> int:
        """Schedule ``deliver(*args)`` after the link delay for a segment.

        Delivery order within a directed host pair is preserved: a jittered
        segment is never delivered before an earlier one (FIFO clamp).
        Returns the absolute delivery time (for a lost segment, the time
        it *would* have arrived). With ``faults=False`` the segment is
        exempt from loss/dup/reorder — the caller models a protocol that
        already recovered them (guest TCP folds retransmits into latency).
        """
        if count:
            self.bytes_sent += nbytes
            self.segments_sent += 1
        when = sim.now + self.delay_for(src, dst, nbytes)
        key = (src[0], dst[0])
        floor = self._fifo_clock.get(key, 0)
        if when < floor:
            when = floor
        if faults and src[0] != dst[0]:
            loss_p, dup_p, reorder_p = self.link_faults(src[0], dst[0])
            if loss_p and self._next_fault() < loss_p:
                # The bytes hit the wire (billed above) but never arrive;
                # the FIFO floor is untouched — nothing was delivered.
                self.segments_lost += 1
                return when
            latency = self._link_value(src[0], dst[0], "latency_ns")
            if reorder_p and self._next_fault() < reorder_p:
                # Hold this segment back without raising the FIFO floor,
                # so segments sent after it may arrive first.
                self.segments_reordered += 1
                extra = 1 + int(self._next_fault() * max(1, latency))
                sim.call_at(when + extra, deliver, *args)
                return when + extra
            if dup_p and self._next_fault() < dup_p:
                # A second copy trails the first; it crosses the wire
                # for real, so its bytes are billed too.
                self.segments_duplicated += 1
                if count:
                    self.bytes_sent += nbytes
                lag = 1 + int(self._next_fault() * max(1, latency))
                sim.call_at(when + lag, deliver, *args)
        self._fifo_clock[key] = when
        sim.call_at(when, deliver, *args)
        return when

    # -- listener registry ------------------------------------------------
    def bind_listener(self, addr: Address, sock: "ListeningSocket") -> int:
        key = addr
        if addr[0] == "0.0.0.0":
            # Wildcard binds are scoped to the listening host so distinct
            # hosts sharing one Network can bind the same port.
            key = ("0.0.0.0@" + sock.host_ip, addr[1])
        if key in self.listeners:
            return -E.EADDRINUSE
        self.listeners[key] = sock
        return 0

    def lookup(self, addr: Address) -> Optional["ListeningSocket"]:
        exact = self.listeners.get(addr)
        if exact is not None:
            return exact
        # host-scoped 0.0.0.0 wildcard bind
        wild = self.listeners.get(("0.0.0.0@" + addr[0], addr[1]))
        if wild is not None:
            return wild
        return self.listeners.get(("0.0.0.0", addr[1]))


class StreamSocket(FileObject):
    """One endpoint of a connected (or connecting) stream."""

    kind = "sock"

    def __init__(self, kernel, host_ip: str, name: str = "sock"):
        super().__init__(name)
        self.kernel = kernel
        self.host_ip = host_ip
        self.local_addr: Address = (host_ip, 0)
        self.peer_addr: Optional[Address] = None
        self.peer: Optional["StreamSocket"] = None
        self.rcvbuf = bytearray()
        self.rcv_closed = False  # peer will send no more data
        self.snd_closed = False  # we will send no more data
        self.connected = False
        self.connecting = False
        self.error = 0
        # Set by the listener when the SYN is refused (RST) or silently
        # shed; _complete() must not mark such a socket connected even
        # if the error code was consumed via SO_ERROR in between.
        self.syn_refused = False
        self.syn_dropped = False
        self.dataq = WaitQueue("sock-data")
        self.connq = WaitQueue("sock-conn")
        self.sockopts: Dict[Tuple[int, int], int] = {}

    def st_mode(self) -> int:
        return C.S_IFSOCK | 0o777

    def poll_mask(self, kernel) -> int:
        mask = 0
        if self.rcvbuf:
            mask |= C.POLLIN
        if self.rcv_closed:
            mask |= C.POLLIN | C.EPOLLRDHUP
        if self.connected and not self.snd_closed:
            mask |= C.POLLOUT
        if self.error:
            mask |= C.POLLERR
        if self.rcv_closed and self.snd_closed:
            mask |= C.POLLHUP
        return mask

    # -- data path --------------------------------------------------------
    def _arrive(self, data: bytes) -> None:
        """Called (scheduled) when a segment reaches this endpoint."""
        if self.rcv_closed:
            return
        self.rcvbuf += data
        self.dataq.notify_all(self.kernel.sim)
        self.notify_pollers(self.kernel)

    def _arrive_fin(self) -> None:
        self.rcv_closed = True
        self.dataq.notify_all(self.kernel.sim)
        self.notify_pollers(self.kernel)

    def send_bytes(self, data: bytes) -> int:
        """Queue ``data`` toward the peer; returns bytes accepted or -errno."""
        if not self.connected or self.peer is None:
            return -E.EPIPE if self.snd_closed else -E.ENOTCONN
        if self.snd_closed:
            return -E.EPIPE
        if self.peer.rcv_closed:
            return -E.EPIPE
        net = self.kernel.network
        peer = self.peer
        payload = bytes(data)
        # Guest streams model TCP: loss/dup/reorder recovery is already
        # folded into the link latency, so stream segments are exempt
        # from the raw fault knobs (faults=False keeps them reliable).
        net.transmit(
            self.kernel.sim, self.local_addr, self.peer_addr, len(payload),
            peer._arrive, payload, faults=False,
        )
        return len(data)

    def read(self, kernel, thread, ofd, count: int):
        while not self.rcvbuf:
            if self.rcv_closed:
                return b""
            if not self.connected:
                return -E.ENOTCONN
            if ofd.nonblocking:
                return -E.EAGAIN
            event = self.dataq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                self.dataq.unregister(event)
                return -E.EINTR
        chunk = bytes(self.rcvbuf[:count])
        del self.rcvbuf[: len(chunk)]
        return chunk

    def write(self, kernel, thread, ofd, data: bytes):
        result = self.send_bytes(data)
        if result == -E.EPIPE:
            kernel.send_signal_to_thread(thread, C.SIGPIPE)
        return result
        yield  # pragma: no cover

    def shutdown(self, how: int) -> int:
        if not self.connected:
            return -E.ENOTCONN
        if how in (C.SHUT_WR, C.SHUT_RDWR) and not self.snd_closed:
            self.snd_closed = True
            if self.peer is not None:
                # Route the FIN through transmit so it cannot overtake
                # in-flight data segments, but keep it out of the byte
                # counters (it carries no payload).
                peer = self.peer
                self.kernel.network.transmit(
                    self.kernel.sim, self.local_addr, self.peer_addr, 0,
                    peer._arrive_fin, count=False, faults=False,
                )
        if how in (C.SHUT_RD, C.SHUT_RDWR):
            self.rcv_closed = True
            self.dataq.notify_all(self.kernel.sim)
        self.notify_pollers(self.kernel)
        return 0

    def on_last_close(self) -> None:
        if self.connected and not self.snd_closed:
            self.shutdown(C.SHUT_WR)
        self.rcv_closed = True


class ListeningSocket(FileObject):
    """A bound, listening stream socket with an accept backlog."""

    kind = "listen"

    def __init__(self, kernel, host_ip: str, name: str = "listen"):
        super().__init__(name)
        self.kernel = kernel
        self.host_ip = host_ip
        self.local_addr: Address = (host_ip, 0)
        self.backlog: deque = deque()
        self.backlog_limit = 128
        self.acceptq = WaitQueue("accept")
        self.sockopts: Dict[Tuple[int, int], int] = {}
        # Optional admission controller (repro.fleet). The kernel stays
        # fleet-agnostic: the controller is duck-typed — on_syn() returns
        # "admit" / "reject" / "drop", on_enqueue()/on_dequeue() stamp
        # queue waits. Attached via Kernel.admission_control at listen().
        self.admission = None

    def st_mode(self) -> int:
        return C.S_IFSOCK | 0o777

    def poll_mask(self, kernel) -> int:
        return C.POLLIN if self.backlog else 0

    def _incoming(self, server_side: StreamSocket) -> None:
        ctl = self.admission
        if ctl is not None:
            action = ctl.on_syn(self.kernel.sim.now, len(self.backlog))
            if action == "reject":
                self._refuse(server_side)
                return
            if action == "drop":
                self._shed_silently(server_side, ctl.drop_timeout_ns)
                return
        elif len(self.backlog) >= self.backlog_limit:
            # Backlog overflow without a controller: the client sees a
            # reset (the pre-admission-control behaviour).
            self._refuse(server_side)
            return
        if ctl is not None:
            ctl.on_enqueue(self.kernel.sim.now)
        self.backlog.append(server_side)
        self.acceptq.notify_all(self.kernel.sim)
        self.notify_pollers(self.kernel)

    def _refuse(self, server_side: StreamSocket) -> None:
        """Reject-with-backpressure: the client side sees an immediate
        reset (modeled at SYN-processing time)."""
        client = server_side.peer
        if client is None:
            return
        client.syn_refused = True
        client.error = E.ECONNREFUSED
        client.connq.notify_all(self.kernel.sim)
        client.notify_pollers(client.kernel)

    def _shed_silently(self, server_side: StreamSocket,
                       timeout_ns: int) -> None:
        """Silent drop: the SYN vanishes; the client learns nothing until
        its own connect timeout fires (retransmits folded into it)."""
        client = server_side.peer
        if client is None:
            return
        client.syn_dropped = True
        sim = self.kernel.sim

        def _timeout():
            if client.connected or client.error:
                return
            client.error = E.ETIMEDOUT
            client.connecting = False
            client.connq.notify_all(sim)
            client.notify_pollers(client.kernel)

        sim.call_at(sim.now + timeout_ns, _timeout)

    def accept_one(self, kernel, thread, nonblocking: bool):
        """Coroutine: pop one pending connection (or block)."""
        while not self.backlog:
            if nonblocking:
                return -E.EAGAIN
            event = self.acceptq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                self.acceptq.unregister(event)
                return -E.EINTR
        conn = self.backlog.popleft()
        ctl = self.admission
        if ctl is not None:
            yield Sleep(kernel.config.costs.fleet_admission_ns, cpu=True)
            ctl.on_dequeue(kernel.sim.now)
        return conn


class AdoptedSocket(FileObject):
    """Follower-side stand-in for a connection accepted on the leader.

    In external-service mode (repro.fleet) the client's SYN exists only
    on the leader's node, so followers cannot accept it themselves; they
    materialise an AdoptedSocket at the same descriptor index to keep fd
    numbering aligned. It carries no data path: recv/send on the
    connection are replicated calls the follower never executes, and its
    readiness is never consulted because epoll/poll results are adopted
    from the leader too. Direct I/O (a bug) fails loudly with ENOTCONN.
    """

    kind = "sock"

    def __init__(self, kernel, host_ip: str, name: str = "adopted-sock"):
        super().__init__(name)
        self.kernel = kernel
        self.host_ip = host_ip
        self.sockopts: Dict[Tuple[int, int], int] = {}

    def st_mode(self) -> int:
        return C.S_IFSOCK | 0o777

    def poll_mask(self, kernel) -> int:
        return 0

    def read(self, kernel, thread, ofd, count: int):
        return -E.ENOTCONN
        yield  # pragma: no cover

    def write(self, kernel, thread, ofd, data: bytes):
        return -E.ENOTCONN
        yield  # pragma: no cover


def connect_sockets(kernel, client: StreamSocket, addr: Address):
    """Coroutine implementing the TCP-ish three-way handshake.

    Returns 0 on success or -errno. The client socket must not already
    be connected. Non-blocking behaviour is handled by the caller.
    """
    listener = kernel.network.lookup(addr)
    if listener is None:
        return -E.ECONNREFUSED
    if client.local_addr[1] == 0:
        client.local_addr = (client.host_ip, kernel.network.ephemeral_port())
    server_side = StreamSocket(
        kernel, listener.host_ip, name="%s<-%s" % (listener.name, client.name)
    )
    server_side.local_addr = (listener.host_ip, addr[1])
    server_side.peer_addr = client.local_addr
    server_side.peer = client
    server_side.connected = True
    client.peer_addr = (listener.host_ip, addr[1])
    client.peer = server_side
    client.connecting = True

    delay = kernel.network.delay_between(client.local_addr, addr)

    def _deliver_syn():
        listener._incoming(server_side)

    kernel.sim.call_at(kernel.sim.now + delay, _deliver_syn)

    def _complete():
        if client.syn_dropped:
            # Silently shed: stay "connecting" until the drop timeout
            # scheduled by the listener flips the socket to ETIMEDOUT.
            return
        if client.error == 0 and not client.syn_refused:
            client.connected = True
        client.connecting = False
        client.connq.notify_all(kernel.sim)
        client.notify_pollers(kernel)

    kernel.sim.call_at(kernel.sim.now + 2 * delay, _complete)
    return 0
    yield  # pragma: no cover
