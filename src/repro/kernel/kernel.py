"""The simulated kernel: syscall dispatch, signals, procfs, accounting."""

from __future__ import annotations

import itertools
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.costs.model import CostModel
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel import calls  # noqa: F401 - registers all syscall handlers
from repro.kernel.futex import FutexManager
from repro.kernel.memory import AddressSpace, MemoryFault
from repro.kernel.process import PendingSignal, Process, Thread
from repro.kernel.shm import ShmManager
from repro.kernel.sockets import Network
from repro.kernel.syscalls import SYSCALL_DISPATCH, SyscallRequest
from repro.kernel.vfs import Filesystem, SyntheticFile
from repro.sim import Event, Simulator, Sleep

#: Virtual epoch for CLOCK_REALTIME: 2026-01-01T00:00:00Z in ns.
REALTIME_EPOCH_NS = 1_767_225_600 * 1_000_000_000

DEFAULT_MMAP_BASE = 0x7F0000000000
DEFAULT_BRK_BASE = 0x000055AA00000000




@dataclass
class KernelConfig:
    """Machine-wide configuration."""

    cores: int = 16
    memory_bytes: int = 64 << 30
    costs: CostModel = field(default_factory=CostModel)
    network_latency_ns: int = 100_000  # one-way; ~0.1 ms gigabit LAN
    loopback_latency_ns: int = 5_000
    network_bandwidth_bps: Optional[float] = None  # None = infinite
    network_jitter_ns: int = 0
    random_seed: int = 0x5EED


class Kernel:
    """Owns every simulated process and dispatches their system calls."""

    def __init__(self, sim: Optional[Simulator] = None, config: Optional[KernelConfig] = None,
                 network: Optional[Network] = None):
        self.config = config or KernelConfig()
        self.sim = sim or Simulator(cores=self.config.cores)
        self.fs = Filesystem()
        # A Network may be shared between kernels (repro.dist gives every
        # simulated node its own kernel on one switch).
        self.network = network or Network(
            latency_ns=self.config.network_latency_ns,
            loopback_latency_ns=self.config.loopback_latency_ns,
            bandwidth_bps=self.config.network_bandwidth_bps,
            jitter_ns=self.config.network_jitter_ns,
            jitter_seed=self.config.random_seed,
        )
        self.futexes = FutexManager()
        self.shm = ShmManager()
        self.processes: Dict[int, Process] = {}
        self.threads: Dict[int, Thread] = {}
        self._ids = itertools.count(1000)
        self._rng_state = self.config.random_seed or 1
        #: Interposition points, tried in order, before ptrace and the
        #: real handler. ReMon's IK-B broker installs itself here.
        self.syscall_hooks: List = []
        #: Callback installed by the guest runtime: (process, entry, arg)
        #: -> new Thread. Used by sys_clone.
        self.thread_spawner: Optional[Callable] = None
        #: Observers notified on fd lifecycle events (GHUMVEE file map).
        self.fd_listeners: List = []
        #: Optional repro.faults.FaultInjector, consulted at dispatch
        #: (crashes, stalls) and raw invocation (transient errors).
        self.fault_injector = None
        self.syscall_counter = 0
        self.syscall_counts_by_name: Dict[str, int] = {}
        #: Optional repro.obs.Obs hub (attach_obs); instrumentation in
        #: syscall_path is skipped entirely while this is None or the
        #: hub has no virtual-cost-bearing instrument enabled.
        self.obs = None
        self._obs_dispatch_ns = 0
        self._obs_syscall_hist = None

    def attach_obs(self, obs) -> None:
        """Wire a repro.obs hub into syscall dispatch."""
        self.obs = obs
        if obs is None:
            self._obs_dispatch_ns = 0
            self._obs_syscall_hist = None
            return
        obs.bind_costs(self.config.costs)
        self._obs_dispatch_ns = obs.dispatch_cost_ns
        self._obs_syscall_hist = (
            obs.registry.histogram("kernel_syscall_ns") if obs.active else None
        )

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def create_process(
        self,
        name: str,
        mmap_base: int = DEFAULT_MMAP_BASE,
        brk_base: int = DEFAULT_BRK_BASE,
        host_ip: str = "10.0.0.1",
    ) -> Process:
        pid = next(self._ids)
        space = AddressSpace(mmap_base, brk_base, name="as:%s" % name)
        process = Process(self, pid, name, space)
        process.host_ip = host_ip
        process.start_time_ns = self.sim.now
        self.processes[pid] = process
        self._install_stdio(process)
        return process

    def _install_stdio(self, process: Process) -> None:
        from repro.kernel.vfs import CharDevice, ConsoleFile, OpenFileDescription

        stdin = CharDevice("stdin", "null")
        console = ConsoleFile(process.name)
        process.fdtable.install(0, OpenFileDescription(stdin, C.O_RDONLY))
        process.fdtable.install(1, OpenFileDescription(console, C.O_WRONLY))
        process.fdtable.install(2, OpenFileDescription(console, C.O_WRONLY))
        process.console = console

    def create_thread(self, process: Process, name: str = "") -> Thread:
        tid = next(self._ids)
        thread = Thread(process, tid, name)
        # Virtual tid: position in the process's spawn order. Replicas of
        # the same program assign identical vtids (thread creation is a
        # monitored, lockstepped call), which is how the MVEE pairs
        # threads across replicas.
        thread.vtid = len(process.threads)
        thread.tracer = getattr(process, "tracer", None)
        process.threads[tid] = thread
        self.threads[tid] = thread
        return thread

    def process_by_pid(self, pid: int) -> Optional[Process]:
        return self.processes.get(pid)

    def thread_by_tid(self, tid: int) -> Optional[Thread]:
        return self.threads.get(tid)

    def terminate_process(self, process: Process, code: int, signo: int = 0) -> None:
        """Mark a process dead and interrupt all of its threads."""
        if process.exited:
            return
        process.exited = True
        process.exit_code = code if signo == 0 else 128 + signo
        for thread in process.live_threads():
            thread.interrupt(self.sim)
        self.sim.fire(process.exit_event, process.exit_code)
        for thread in list(process.threads.values()):
            tracer = thread.tracer
            if tracer is not None:
                tracer.report_thread_gone(thread, code, signo)

    # ------------------------------------------------------------------
    # Syscall dispatch
    # ------------------------------------------------------------------
    def syscall_path(self, thread: Thread, req: SyscallRequest):
        """The full kernel entry path for one system call (coroutine)."""
        thread.syscall_count += 1
        self.syscall_counter += 1
        self.syscall_counts_by_name[req.name] = (
            self.syscall_counts_by_name.get(req.name, 0) + 1
        )
        thread.current_syscall = req
        obs = self.obs
        span = None
        dispatch_start = 0
        if obs is not None and obs.active:
            dispatch_start = self.sim.now
            replica = getattr(thread.process, "replica_index", None)
            if obs.recorder is not None and replica is not None:
                obs.recorder.record(replica, dispatch_start, "syscall",
                                    req.name, vtid=thread.vtid)
            if obs.tracer.enabled:
                span = obs.tracer.begin("kernel", "syscall", syscall=req.name,
                                        vtid=thread.vtid, replica=replica)
        try:
            yield Sleep(
                self.config.costs.syscall_base_ns + self._obs_dispatch_ns,
                cpu=True,
            )
            injector = self.fault_injector
            if injector is not None:
                action = injector.on_syscall_entry(thread, req)
                if action is not None:
                    kind, value = action
                    if kind == "crash":
                        return -E.EINTR
                    if kind == "stall":
                        yield Sleep(value, cpu=False)
                        if thread.process.exited:
                            return -E.EINTR
            for hook in self.syscall_hooks:
                interception = hook.intercept(thread, req)
                if interception is not None:
                    result = yield from interception
                    return result
            result = yield from self.traced_invoke(thread, req)
            return result
        finally:
            thread.current_syscall = None
            if span is not None:
                span.finish()
            if self._obs_syscall_hist is not None:
                self._obs_syscall_hist.observe(self.sim.now - dispatch_start)

    def traced_invoke(self, thread: Thread, req: SyscallRequest):
        """Invoke with ptrace interposition if the thread is traced."""
        tracer = thread.tracer
        if tracer is not None and tracer.traces_syscalls(thread):
            yield from tracer.report_syscall_entry(thread, req)
            req = thread.current_syscall or req  # tracer may rewrite
            if thread.ptrace_skip_call:
                thread.ptrace_skip_call = False
                result = thread.ptrace_forced_result
            else:
                result = yield from self.invoke(thread, req)
            result = yield from tracer.report_syscall_exit(thread, req, result)
            return result
        result = yield from self.invoke(thread, req)
        return result

    def invoke(self, thread: Thread, req: SyscallRequest):
        """Run the raw handler (no tracing, no hooks). Coroutine."""
        entry = SYSCALL_DISPATCH.get(req.name)
        if entry is None:
            return -E.ENOSYS
        handler, is_coroutine = entry
        injector = self.fault_injector
        if injector is not None:
            forced = injector.on_invoke(thread, req)
            if forced is not None:
                return -forced
        try:
            if is_coroutine:
                result = yield from handler(self, thread, *req.args)
            else:
                result = handler(self, thread, *req.args)
                if isinstance(result, types.GeneratorType):
                    result = yield from result
            return result
        except MemoryFault:
            return -E.EFAULT

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def send_signal_to_process(
        self, process: Process, signo: int, sender_pid: int = 0
    ) -> None:
        if process.exited:
            return
        threads = process.live_threads()
        if not threads:
            return
        target = None
        for thread in threads:
            if signo not in thread.sigmask:
                target = thread
                break
        if target is None:
            target = threads[0]
        self.send_signal_to_thread(target, signo, sender_pid=sender_pid)

    def send_signal_to_thread(
        self,
        thread: Thread,
        signo: int,
        sender_pid: int = 0,
        synchronous: bool = False,
    ) -> None:
        if thread.exited or thread.process.exited:
            return
        tracer = thread.tracer
        if (
            tracer is not None
            and not synchronous
            and signo not in (C.SIGKILL, C.SIGSTOP)
            and tracer.intercepts_signal(thread, signo)
        ):
            tracer.report_signal(thread, signo, sender_pid)
            return
        self.queue_signal(thread, PendingSignal(signo, sender_pid, synchronous))

    def queue_signal(self, thread: Thread, pending: PendingSignal) -> None:
        """Queue a signal directly on a thread (bypassing tracer
        interception — used by tracers to inject deferred signals)."""
        thread.pending.append(pending)
        if pending.signo not in thread.sigmask or pending.signo in (
            C.SIGKILL,
            C.SIGSTOP,
        ):
            thread.interrupt(self.sim)

    def schedule_itimer(self, process: Process, expiry: int) -> None:
        def _fire():
            if process.exited or process.itimer_real is None:
                return
            due, interval = process.itimer_real
            if due != expiry:
                return  # re-armed since
            if interval > 0:
                process.itimer_real = (due + interval, interval)
                self.schedule_itimer(process, due + interval)
            else:
                process.itimer_real = None
            self.send_signal_to_process(process, C.SIGALRM)

        self.sim.call_at(expiry, _fire)

    # ------------------------------------------------------------------
    # procfs
    # ------------------------------------------------------------------
    def procfs_lookup(self, thread: Thread, path: str) -> Optional[SyntheticFile]:
        parts = [p for p in path.split("/") if p]
        if len(parts) < 2 or parts[0] != "proc":
            return None
        who = parts[1]
        if who == "self":
            process = thread.process
        else:
            try:
                process = self.processes.get(int(who))
            except ValueError:
                process = None
        if process is None:
            return None
        entry = parts[2] if len(parts) > 2 else ""
        if entry == "maps":
            space = process.space
            node = SyntheticFile("maps", lambda: space.maps_text().encode())
            node.proc_entry = ("maps", process.pid)
            return node
        if entry == "status":
            node = SyntheticFile(
                "status",
                lambda: (
                    "Name:\t%s\nPid:\t%d\nThreads:\t%d\n"
                    % (process.name, process.pid, len(process.live_threads()))
                ).encode(),
            )
            node.proc_entry = ("status", process.pid)
            return node
        return None

    # ------------------------------------------------------------------
    # fd lifecycle notifications (consumed by GHUMVEE's file map)
    # ------------------------------------------------------------------
    def on_fd_opened(self, process: Process, fd: int) -> None:
        for listener in self.fd_listeners:
            listener.fd_opened(process, fd)

    def on_fd_closed(self, process: Process, fd: int) -> None:
        for listener in self.fd_listeners:
            listener.fd_closed(process, fd)

    def on_fd_flags_changed(self, process: Process, fd: int) -> None:
        for listener in self.fd_listeners:
            listener.fd_flags_changed(process, fd)

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def realtime_ns(self) -> int:
        return REALTIME_EPOCH_NS + self.sim.now

    def random_bytes(self, count: int) -> bytes:
        out = bytearray()
        state = self._rng_state
        while len(out) < count:
            state = (state * 6364136223846793005 + 1442695040888963407) & (
                (1 << 64) - 1
            )
            out += state.to_bytes(8, "little")
        self._rng_state = state
        return bytes(out[:count])

    def random_u64(self) -> int:
        return int.from_bytes(self.random_bytes(8), "little")

    def copy_cost(self, nbytes: int) -> Sleep:
        return Sleep(int(nbytes * self.config.costs.copy_ns_per_byte), cpu=True)

    def merge_events(self, events) -> Event:
        """An event that fires as soon as any of ``events`` fires."""
        merged = Event("merged")
        for event in events:
            event.add_listener(lambda value, m=merged: self.sim.fire(m, value))
        return merged
