"""Control-flow exceptions used to unwind guest threads.

These propagate out of syscall handlers, through the kernel's dispatch
path, up to the guest thread runner, which converts them into thread or
process teardown. They are not error conditions.
"""


class ThreadExitRequest(Exception):
    """The calling thread invoked exit(2)."""

    def __init__(self, code: int = 0):
        super().__init__("thread exit (%d)" % code)
        self.code = code


class ProcessExitRequest(Exception):
    """The calling thread invoked exit_group(2) (or died to a signal)."""

    def __init__(self, code: int = 0, signal: int = 0):
        super().__init__("process exit (code=%d, sig=%d)" % (code, signal))
        self.code = code
        self.signal = signal
