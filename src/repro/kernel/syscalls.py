"""System-call requests and the handler registry.

Guest programs yield :class:`SyscallRequest` objects; the kernel looks
the name up in :data:`SYSCALL_TABLE` and drives the registered coroutine
handler. Handlers return non-negative results (ints or byte strings are
both allowed internally; the guest-facing convention is Linux's: ints,
with buffers written into guest memory) or ``-errno``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Tuple


class SyscallRequest:
    """One system-call invocation.

    Attributes:
        name: syscall name (e.g. ``"read"``).
        args: positional arguments, raw ABI values (ints / addresses).
        site: where the syscall instruction lives — ``"app"`` for normal
            application code, ``"ipmon"`` for calls (re)issued from
            IP-MON's system call entry point. IK-B's verifier checks this
            the way the real broker checks the caller's program counter.
        token: the one-time authorization token IK-B handed to IP-MON,
            still attached to the restarted call (or None).
    """

    __slots__ = ("name", "args", "site", "token", "bypass_agents")

    def __init__(
        self,
        name: str,
        args: Tuple = (),
        site: str = "app",
        token: Optional[int] = None,
    ):
        self.name = name
        self.args = tuple(args)
        self.site = site
        self.token = token
        #: Attack-scenario flag: the syscall instruction was an
        #: *unaligned gadget* that userspace rewriting (VARAN) never
        #: instrumented. Kernel-level interception (IK-B) ignores this.
        self.bypass_agents = False

    def arg(self, index: int, default=0):
        if index < len(self.args):
            return self.args[index]
        return default

    def replace(self, **kwargs) -> "SyscallRequest":
        fields = {
            "name": self.name,
            "args": self.args,
            "site": self.site,
            "token": self.token,
        }
        fields.update(kwargs)
        return SyscallRequest(**fields)

    def __repr__(self):
        return "SyscallRequest(%s%r, site=%s)" % (self.name, self.args, self.site)


#: name -> handler coroutine ``handler(kernel, thread, *args)``
SYSCALL_TABLE: Dict[str, Callable] = {}

#: Precompiled dispatch: name -> ``(handler, is_coroutine)``. The flag
#: is resolved once at registration (``inspect.isgeneratorfunction``),
#: so the kernel's per-call fast path needs one dict lookup and no
#: ``isinstance`` probe for coroutine handlers. Plain handlers keep a
#: runtime generator check because some delegate to coroutine helpers
#: via ``return _helper(...)``.
SYSCALL_DISPATCH: Dict[str, Tuple[Callable, bool]] = {}


def syscall(name: str):
    """Decorator registering a syscall handler under ``name``."""

    def register(fn):
        if name in SYSCALL_TABLE:
            raise ValueError("duplicate syscall handler: %s" % name)
        SYSCALL_TABLE[name] = fn
        SYSCALL_DISPATCH[name] = (fn, inspect.isgeneratorfunction(fn))
        return fn

    return register


def supported_syscalls() -> Tuple[str, ...]:
    return tuple(sorted(SYSCALL_TABLE))
