"""ABI constants for the simulated kernel (x86-64 Linux values)."""

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1

# ---------------------------------------------------------------------------
# open(2) flags
# ---------------------------------------------------------------------------
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_DIRECTORY = 0o200000
O_CLOEXEC = 0o2000000

AT_FDCWD = -100

# lseek whence
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# access(2) modes
F_OK = 0
X_OK = 1
W_OK = 2
R_OK = 4

# fcntl(2) commands
F_DUPFD = 0
F_GETFD = 1
F_SETFD = 2
F_GETFL = 3
F_SETFL = 4
FD_CLOEXEC = 1

# ---------------------------------------------------------------------------
# mmap(2)
# ---------------------------------------------------------------------------
PROT_NONE = 0x0
PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20

MADV_NORMAL = 0
MADV_DONTNEED = 4

# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGSYS = 31
NSIG = 64

SIG_DFL = 0
SIG_IGN = 1

SIG_BLOCK = 0
SIG_UNBLOCK = 1
SIG_SETMASK = 2

# Synchronous signals are produced by the executing instruction stream and
# are therefore delivered immediately to all replicas (paper §2.2).
SYNCHRONOUS_SIGNALS = frozenset({SIGILL, SIGTRAP, SIGBUS, SIGFPE, SIGSEGV, SIGSYS})

# Default dispositions: signals whose default action terminates a process.
FATAL_BY_DEFAULT = frozenset(
    {
        SIGHUP,
        SIGINT,
        SIGQUIT,
        SIGILL,
        SIGTRAP,
        SIGABRT,
        SIGBUS,
        SIGFPE,
        SIGKILL,
        SIGUSR1,
        SIGSEGV,
        SIGUSR2,
        SIGPIPE,
        SIGALRM,
        SIGTERM,
        SIGSYS,
    }
)

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP",
    SIGINT: "SIGINT",
    SIGQUIT: "SIGQUIT",
    SIGILL: "SIGILL",
    SIGTRAP: "SIGTRAP",
    SIGABRT: "SIGABRT",
    SIGBUS: "SIGBUS",
    SIGFPE: "SIGFPE",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGSEGV: "SIGSEGV",
    SIGUSR2: "SIGUSR2",
    SIGPIPE: "SIGPIPE",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD",
    SIGCONT: "SIGCONT",
    SIGSTOP: "SIGSTOP",
    SIGSYS: "SIGSYS",
}

# ---------------------------------------------------------------------------
# futex(2)
# ---------------------------------------------------------------------------
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_PRIVATE_FLAG = 128

# ---------------------------------------------------------------------------
# epoll(7)
# ---------------------------------------------------------------------------
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3

EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010
EPOLLRDHUP = 0x2000
EPOLLET = 1 << 31

# poll(2) events share values with epoll's low bits
POLLIN = 0x001
POLLOUT = 0x004
POLLERR = 0x008
POLLHUP = 0x010
POLLNVAL = 0x020

# ---------------------------------------------------------------------------
# Sockets
# ---------------------------------------------------------------------------
AF_INET = 2
AF_UNIX = 1
SOCK_STREAM = 1
SOCK_DGRAM = 2
SOCK_NONBLOCK = 0o4000
SOCK_CLOEXEC = 0o2000000

SOL_SOCKET = 1
SO_REUSEADDR = 2
SO_ERROR = 4
SO_SNDBUF = 7
SO_RCVBUF = 8
SO_KEEPALIVE = 9

SHUT_RD = 0
SHUT_WR = 1
SHUT_RDWR = 2

# ---------------------------------------------------------------------------
# clone(2) flags (subset)
# ---------------------------------------------------------------------------
CLONE_VM = 0x00000100
CLONE_FS = 0x00000200
CLONE_FILES = 0x00000400
CLONE_SIGHAND = 0x00000800
CLONE_THREAD = 0x00010000
CLONE_THREAD_FLAGS = (
    CLONE_VM | CLONE_FS | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD
)

# ---------------------------------------------------------------------------
# System V IPC
# ---------------------------------------------------------------------------
IPC_PRIVATE = 0
IPC_CREAT = 0o1000
IPC_EXCL = 0o2000
IPC_RMID = 0

# ---------------------------------------------------------------------------
# clockids
# ---------------------------------------------------------------------------
CLOCK_REALTIME = 0
CLOCK_MONOTONIC = 1

# ---------------------------------------------------------------------------
# File types for stat(2) st_mode
# ---------------------------------------------------------------------------
S_IFMT = 0o170000
S_IFSOCK = 0o140000
S_IFLNK = 0o120000
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFCHR = 0o020000
S_IFIFO = 0o010000

# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------
UTSNAME = {
    "sysname": "Linux",
    "nodename": "remon-repro",
    "release": "3.13.11-ikb",
    "version": "#1 SMP (simulated)",
    "machine": "x86_64",
}

DEFAULT_RLIMIT_NOFILE = 1024
