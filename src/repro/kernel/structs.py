"""Binary layouts for kernel/userspace structures.

The simulated kernel communicates with guests through real byte buffers
inside the guests' address spaces, using fixed little-endian layouts.
Keeping these binary keeps the MVEE honest: replicating a ``stat`` result
or an ``epoll_event`` array really is a byte copy between address spaces,
exactly as in the paper's monitors.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

# ---------------------------------------------------------------------------
# struct stat (simplified, 80 bytes)
#   st_dev, st_ino, st_mode, st_nlink, st_uid, st_gid, st_size,
#   st_atime_ns, st_mtime_ns, st_ctime_ns
# ---------------------------------------------------------------------------
STAT_FMT = "<QQIIIIq qqq".replace(" ", "")
STAT_SIZE = struct.calcsize(STAT_FMT)


def pack_stat(
    st_dev: int,
    st_ino: int,
    st_mode: int,
    st_nlink: int,
    st_uid: int,
    st_gid: int,
    st_size: int,
    st_atime_ns: int = 0,
    st_mtime_ns: int = 0,
    st_ctime_ns: int = 0,
) -> bytes:
    return struct.pack(
        STAT_FMT,
        st_dev,
        st_ino,
        st_mode,
        st_nlink,
        st_uid,
        st_gid,
        st_size,
        st_atime_ns,
        st_mtime_ns,
        st_ctime_ns,
    )


def unpack_stat(data: bytes) -> dict:
    fields = struct.unpack(STAT_FMT, data[:STAT_SIZE])
    keys = (
        "st_dev",
        "st_ino",
        "st_mode",
        "st_nlink",
        "st_uid",
        "st_gid",
        "st_size",
        "st_atime_ns",
        "st_mtime_ns",
        "st_ctime_ns",
    )
    return dict(zip(keys, fields))


# ---------------------------------------------------------------------------
# struct timeval / timespec
# ---------------------------------------------------------------------------
TIMEVAL_FMT = "<qq"
TIMEVAL_SIZE = struct.calcsize(TIMEVAL_FMT)
TIMESPEC_FMT = "<qq"
TIMESPEC_SIZE = struct.calcsize(TIMESPEC_FMT)


def pack_timeval(ns: int) -> bytes:
    return struct.pack(TIMEVAL_FMT, ns // 1_000_000_000, (ns % 1_000_000_000) // 1000)


def pack_timespec(ns: int) -> bytes:
    return struct.pack(TIMESPEC_FMT, ns // 1_000_000_000, ns % 1_000_000_000)


def unpack_timespec(data: bytes) -> int:
    sec, nsec = struct.unpack(TIMESPEC_FMT, data[:TIMESPEC_SIZE])
    return sec * 1_000_000_000 + nsec


# ---------------------------------------------------------------------------
# struct epoll_event: uint32 events + uint64 data (packed, 12 bytes)
# ---------------------------------------------------------------------------
EPOLL_EVENT_FMT = "<IQ"
EPOLL_EVENT_SIZE = struct.calcsize(EPOLL_EVENT_FMT)


def pack_epoll_event(events: int, data: int) -> bytes:
    return struct.pack(EPOLL_EVENT_FMT, events & 0xFFFFFFFF, data & (1 << 64) - 1)


def unpack_epoll_event(raw: bytes) -> Tuple[int, int]:
    return struct.unpack(EPOLL_EVENT_FMT, raw[:EPOLL_EVENT_SIZE])


# ---------------------------------------------------------------------------
# struct iovec: void* iov_base + size_t iov_len
# ---------------------------------------------------------------------------
IOVEC_FMT = "<QQ"
IOVEC_SIZE = struct.calcsize(IOVEC_FMT)


def pack_iovec(base: int, length: int) -> bytes:
    return struct.pack(IOVEC_FMT, base, length)


def read_iovecs(space, iov_addr: int, iovcnt: int) -> List[Tuple[int, int]]:
    """Read an iovec array from guest memory."""
    raw = space.read(iov_addr, IOVEC_SIZE * iovcnt)
    out = []
    for i in range(iovcnt):
        base, length = struct.unpack_from(IOVEC_FMT, raw, i * IOVEC_SIZE)
        out.append((base, length))
    return out


# ---------------------------------------------------------------------------
# struct sockaddr_in (simplified, 16 bytes): family, port, 4-byte ip, pad
# ---------------------------------------------------------------------------
SOCKADDR_FMT = "<HH4s8s"
SOCKADDR_SIZE = struct.calcsize(SOCKADDR_FMT)


def pack_sockaddr(family: int, ip: str, port: int) -> bytes:
    parts = bytes(int(p) for p in ip.split("."))
    return struct.pack(SOCKADDR_FMT, family, port, parts, b"\x00" * 8)


def unpack_sockaddr(raw: bytes) -> Tuple[int, str, int]:
    family, port, ip_bytes, _pad = struct.unpack(SOCKADDR_FMT, raw[:SOCKADDR_SIZE])
    ip = ".".join(str(b) for b in ip_bytes)
    return family, ip, port


# ---------------------------------------------------------------------------
# struct pollfd: int fd, short events, short revents
# ---------------------------------------------------------------------------
POLLFD_FMT = "<ihh"
POLLFD_SIZE = struct.calcsize(POLLFD_FMT)


def pack_pollfd(fd: int, events: int, revents: int) -> bytes:
    return struct.pack(POLLFD_FMT, fd, events, revents)


def unpack_pollfd(raw: bytes) -> Tuple[int, int, int]:
    return struct.unpack(POLLFD_FMT, raw[:POLLFD_SIZE])


# ---------------------------------------------------------------------------
# linux_dirent (simplified): u64 ino, u16 reclen, name bytes, NUL, u8 type
# ---------------------------------------------------------------------------
def pack_dirent(ino: int, name: bytes, dtype: int) -> bytes:
    reclen = 8 + 2 + len(name) + 1 + 1
    return struct.pack("<QH", ino, reclen) + name + b"\x00" + bytes([dtype])


def unpack_dirents(raw: bytes) -> List[Tuple[int, bytes, int]]:
    out = []
    offset = 0
    while offset + 10 <= len(raw):
        ino, reclen = struct.unpack_from("<QH", raw, offset)
        if reclen < 12 or offset + reclen > len(raw):
            break
        name = raw[offset + 10 : offset + reclen - 2]
        dtype = raw[offset + reclen - 1]
        out.append((ino, name, dtype))
        offset += reclen
    return out
