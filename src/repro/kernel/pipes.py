"""Anonymous pipes."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.vfs import FileObject
from repro.kernel.waitq import WaitQueue, wait_interruptible

PIPE_CAPACITY = 65536


class Pipe:
    """The shared buffer between a read end and a write end."""

    def __init__(self, kernel, name: str = "pipe"):
        self.kernel = kernel
        self.name = name
        self.buffer = bytearray()
        self.capacity = PIPE_CAPACITY
        self.readers = 0
        self.writers = 0
        self.dataq = WaitQueue("pipe-data")
        self.spaceq = WaitQueue("pipe-space")
        self.read_end = PipeEnd(self, "r")
        self.write_end = PipeEnd(self, "w")


class PipeEnd(FileObject):
    kind = "pipe"

    def __init__(self, pipe: Pipe, mode: str):
        super().__init__("%s:%s" % (pipe.name, mode))
        self.pipe = pipe
        self.mode = mode
        if mode == "r":
            pipe.readers += 1
        else:
            pipe.writers += 1

    def st_mode(self) -> int:
        return C.S_IFIFO | 0o600

    def on_last_close(self) -> None:
        pipe = self.pipe
        sim = pipe.kernel.sim
        if self.mode == "r":
            pipe.readers -= 1
            if pipe.readers == 0:
                # Writers now get EPIPE; wake them so they can see it.
                pipe.spaceq.notify_all(sim)
                pipe.write_end.pollq.notify_all(sim)
        else:
            pipe.writers -= 1
            if pipe.writers == 0:
                pipe.dataq.notify_all(sim)
                pipe.read_end.pollq.notify_all(sim)

    def poll_mask(self, kernel) -> int:
        pipe = self.pipe
        mask = 0
        if self.mode == "r":
            if pipe.buffer:
                mask |= C.POLLIN
            if pipe.writers == 0:
                mask |= C.POLLHUP
        else:
            if len(pipe.buffer) < pipe.capacity:
                mask |= C.POLLOUT
            if pipe.readers == 0:
                mask |= C.POLLERR
        return mask

    def read(self, kernel, thread, ofd, count: int):
        if self.mode != "r":
            return -E.EBADF
        pipe = self.pipe
        while not pipe.buffer:
            if pipe.writers == 0:
                return b""
            if ofd.nonblocking:
                return -E.EAGAIN
            event = pipe.dataq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                pipe.dataq.unregister(event)
                return -E.EINTR
        chunk = bytes(pipe.buffer[:count])
        del pipe.buffer[: len(chunk)]
        pipe.spaceq.notify_all(kernel.sim)
        pipe.write_end.pollq.notify_all(kernel.sim)
        return chunk

    def write(self, kernel, thread, ofd, data: bytes):
        if self.mode != "w":
            return -E.EBADF
        pipe = self.pipe
        written = 0
        data = bytes(data)
        while written < len(data):
            if pipe.readers == 0:
                kernel.send_signal_to_thread(thread, C.SIGPIPE)
                return written if written else -E.EPIPE
            space = pipe.capacity - len(pipe.buffer)
            if space == 0:
                if ofd.nonblocking:
                    return written if written else -E.EAGAIN
                event = pipe.spaceq.register()
                status, _ = yield from wait_interruptible(thread, event)
                if status == "interrupted":
                    pipe.spaceq.unregister(event)
                    return written if written else -E.EINTR
                continue
            chunk = data[written : written + space]
            pipe.buffer += chunk
            written += len(chunk)
            pipe.dataq.notify_all(kernel.sim)
            pipe.read_end.pollq.notify_all(kernel.sim)
        return written
