"""Processes, threads and file-descriptor tables."""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.memory import AddressSpace
from repro.kernel.waitq import INTERRUPTED
from repro.sim import Event


class FDEntry:
    """One slot in a file-descriptor table."""

    __slots__ = ("ofd", "cloexec")

    def __init__(self, ofd, cloexec: bool = False):
        self.ofd = ofd
        self.cloexec = cloexec


class FDTable:
    """Per-process descriptor table with lowest-free allocation."""

    def __init__(self, limit: int = C.DEFAULT_RLIMIT_NOFILE):
        self._entries: Dict[int, FDEntry] = {}
        self.limit = limit

    def alloc(self, ofd, cloexec: bool = False, lowest: int = 0) -> int:
        """Install ``ofd`` at the lowest free fd >= ``lowest``."""
        fd = lowest
        while fd in self._entries:
            fd += 1
        if fd >= self.limit:
            return -E.EMFILE
        self._entries[fd] = FDEntry(ofd, cloexec)
        ofd.refcount += 1
        return fd

    def install(self, fd: int, ofd, cloexec: bool = False):
        """Install at a specific fd, closing whatever was there (dup2)."""
        old = self._entries.pop(fd, None)
        if old is not None:
            old.ofd.release()
        self._entries[fd] = FDEntry(ofd, cloexec)
        ofd.refcount += 1
        return old

    def get(self, fd: int) -> Optional[FDEntry]:
        return self._entries.get(fd)

    def close(self, fd: int) -> int:
        entry = self._entries.pop(fd, None)
        if entry is None:
            return -E.EBADF
        entry.ofd.release()
        return 0

    def close_all(self) -> None:
        for entry in self._entries.values():
            entry.ofd.release()
        self._entries.clear()

    def fds(self):
        return sorted(self._entries)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries


class SignalAction:
    """Disposition for one signal number."""

    __slots__ = ("handler", "mask", "flags")

    def __init__(self, handler=C.SIG_DFL, mask=frozenset(), flags=0):
        self.handler = handler
        self.mask = frozenset(mask)
        self.flags = flags


class PendingSignal:
    __slots__ = ("signo", "sender_pid", "synchronous")

    def __init__(self, signo: int, sender_pid: int = 0, synchronous: bool = False):
        self.signo = signo
        self.sender_pid = sender_pid
        self.synchronous = synchronous

    def __repr__(self):
        return "PendingSignal(%s)" % C.SIGNAL_NAMES.get(self.signo, self.signo)


class Process:
    """A simulated process: address space + fd table + threads + signals."""

    def __init__(
        self,
        kernel,
        pid: int,
        name: str,
        space: AddressSpace,
        ppid: int = 1,
        uid: int = 1000,
        gid: int = 1000,
    ):
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.space = space
        self.ppid = ppid
        self.pgid = pid
        self.uid = uid
        self.gid = gid
        self.euid = uid
        self.egid = gid
        self.cwd = "/"
        self.fdtable = FDTable()
        self.signal_actions: Dict[int, SignalAction] = {}
        self.threads: Dict[int, "Thread"] = {}
        self.exited = False
        self.exit_code: Optional[int] = None
        #: Set by the MVEE when this replica is removed from the group as
        #: a benign fault (degraded mode) — its death is then expected.
        self.quarantined = False
        self.exit_event = Event("exit:%s" % name)
        self.start_time_ns = 0
        # Accounting for times()/getrusage()
        self.utime_ns = 0
        self.stime_ns = 0
        # itimer (ITIMER_REAL) state: (next_expiry_ns, interval_ns) or None
        self.itimer_real = None
        # Attached SysV shm segments: attach address -> shmid
        self.shm_attachments: Dict[int, int] = {}

    def action_for(self, signo: int) -> SignalAction:
        return self.signal_actions.get(signo, SignalAction())

    def live_threads(self):
        return [t for t in self.threads.values() if not t.exited]

    def main_thread(self) -> "Thread":
        return self.threads[min(self.threads)]

    def __repr__(self):
        return "Process(pid=%d, %s)" % (self.pid, self.name)


class Thread:
    """A simulated thread of execution."""

    def __init__(self, process: Process, tid: int, name: str = ""):
        self.process = process
        self.tid = tid
        self.name = name or "%s.t%d" % (process.name, tid)
        self.sigmask = set()
        self.pending = deque()
        self.exited = False
        self.exit_event = Event("texit:%s" % self.name)
        self.task = None  # simulator Task, set by the guest runtime
        # Interruptible-wait bookkeeping: the event the thread currently
        # blocks on, so signal delivery can interrupt it.
        self._interrupt_event = None
        self.in_interruptible_wait = False
        # ptrace state (managed by repro.ptrace.api.Tracer)
        self.tracer = None
        self.ptrace_stopped = False
        self.ptrace_resume_event = None
        self.ptrace_current_stop = None
        self.ptrace_skip_call = False
        self.ptrace_forced_result = None
        self.suppress_restart = False
        # Set by the guest runtime so the kernel and monitors can
        # introspect what the thread is doing (paper §3.8).
        self.current_syscall = None
        self.in_ipmon_syscall = False
        # Per-thread accounting
        self.syscall_count = 0
        self.utime_ns = 0

    # -- signal/interrupt plumbing --------------------------------------
    def begin_interruptible(self, event) -> None:
        self._interrupt_event = event
        self.in_interruptible_wait = True

    def end_interruptible(self, event) -> None:
        if self._interrupt_event is event:
            self._interrupt_event = None
        self.in_interruptible_wait = False

    def interrupt(self, sim) -> bool:
        """Interrupt a blocked thread (signal arrival). Returns True when
        the thread was actually blocked in an interruptible wait."""
        event = self._interrupt_event
        if event is not None and not event.fired:
            self._interrupt_event = None
            sim.fire(event, INTERRUPTED)
            return True
        return False

    def deliverable_signal(self) -> Optional[PendingSignal]:
        """First pending signal not blocked by the thread's mask."""
        for pending in self.pending:
            if pending.signo not in self.sigmask or pending.signo in (
                C.SIGKILL,
                C.SIGSTOP,
            ):
                return pending
        return None

    def take_signal(self, pending: PendingSignal) -> None:
        self.pending.remove(pending)

    def __repr__(self):
        return "Thread(%s)" % self.name
