"""A simulated Linux-like kernel substrate.

The simulated kernel provides everything ReMon's design interacts with:
processes and threads with real (byte-backed) address spaces, a VFS with
regular files, pipes, sockets, epoll instances and timerfds, futexes,
System V shared memory, POSIX-style signals, and a ptrace hook surface.

System calls follow the Linux convention: handlers return a non-negative
result on success and ``-errno`` on failure. All handlers are coroutines
on the discrete-event simulator, so blocking calls (reads on empty pipes,
``futex`` waits, ``epoll_wait`` …) suspend only the calling simulated
thread.
"""

from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.process import Process, Thread
from repro.kernel.syscalls import SyscallRequest

__all__ = ["Kernel", "KernelConfig", "Process", "SyscallRequest", "Thread"]
