"""Errno values used by the simulated kernel.

Values match x86-64 Linux so that traces read naturally next to real
strace output. Syscall handlers return ``-code`` on failure, exactly as
the real kernel ABI does.
"""

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
ENXIO = 6
EBADF = 9
ECHILD = 10
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EBUSY = 16
EEXIST = 17
ENODEV = 19
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOTTY = 25
EFBIG = 27
ENOSPC = 28
ESPIPE = 29
EROFS = 30
EPIPE = 32
ERANGE = 34
ENOSYS = 38
ENOTEMPTY = 39
ELOOP = 40
ENODATA = 61
ETIME = 62
EOVERFLOW = 75
ENAMETOOLONG = 36
ENOTSOCK = 88
EDESTADDRREQ = 89
EMSGSIZE = 90
EOPNOTSUPP = 95
EADDRINUSE = 98
EADDRNOTAVAIL = 99
ENETUNREACH = 101
ECONNABORTED = 103
ECONNRESET = 104
ENOBUFS = 105
EISCONN = 106
ENOTCONN = 107
ETIMEDOUT = 110
ECONNREFUSED = 111
EALREADY = 114
EINPROGRESS = 115

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.isupper() and isinstance(value, int)
}


def errno_name(code: int) -> str:
    """Return the symbolic name for an errno value (or ``E?<n>``)."""
    return _NAMES.get(abs(code), "E?%d" % abs(code))


def is_error(result: int) -> bool:
    """True when a raw syscall return value encodes an error.

    Linux encodes errors as the range [-4095, -1]; mmap results can be
    large "negative" addresses, which is why the range check matters.
    """
    return isinstance(result, int) and -4095 <= result < 0
