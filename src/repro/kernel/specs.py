"""ABI specifications for system-call arguments and results.

The MVEE layers need to know, for every syscall, which arguments are
plain values, which are pointers (whose raw values legitimately differ
between diversified replicas), which point at input buffers whose
*contents* must match, and which point at output buffers whose contents
must be replicated from the master to the slaves.

GHUMVEE's comparator, IP-MON's CALCSIZE/PRECALL/POSTCALL handlers and
the replication engine all consume this one table, which is the moral
equivalent of the C macro blocks in the paper's Listing 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

# --- length sources --------------------------------------------------------


def from_arg(index: int) -> Tuple[str, int]:
    """Length comes from argument ``index`` of the call."""
    return ("arg", index)


def from_ret() -> Tuple[str, int]:
    """Length is the call's (non-negative) return value."""
    return ("ret", 0)


def fixed(nbytes: int) -> Tuple[str, int]:
    """Fixed-size structure."""
    return ("fixed", nbytes)


# --- argument atoms ---------------------------------------------------------


class ArgSpec:
    """Base class; ``compare`` tells the monitor how to cross-check."""

    kind = "reg"

    def __repr__(self):
        return "<%s>" % self.kind


class Reg(ArgSpec):
    """Plain value: must be identical in all replicas."""

    kind = "reg"


class Fd(Reg):
    """A file descriptor: identical across replicas (fd allocation is
    deterministic and monitored)."""

    kind = "fd"


class Ptr(ArgSpec):
    """A pointer whose raw value differs under ASLR; replicas must agree
    only on NULL-ness."""

    kind = "ptr"


class Callable_(ArgSpec):
    """A code pointer (signal handler, thread entry). Under DCL the raw
    values always differ; replicas must agree on NULL/SIG_DFL/SIG_IGN
    versus a real handler."""

    kind = "callable"


class CStr(ArgSpec):
    """Pointer to a NUL-terminated string; contents must match."""

    kind = "cstr"


class BufIn(ArgSpec):
    """Pointer to an input buffer; contents must match. ``length`` is a
    length source (usually another argument)."""

    kind = "buf_in"

    def __init__(self, length):
        self.length = length


class BufOut(ArgSpec):
    """Pointer to an output buffer the kernel fills; the master's bytes
    are replicated to the slaves. ``length`` bounds the copy (the actual
    number of valid bytes usually comes from the return value)."""

    kind = "buf_out"

    def __init__(self, length, valid=None):
        self.length = length
        self.valid = valid if valid is not None else from_ret()


class StructOut(BufOut):
    """Fixed-size output structure."""

    kind = "struct_out"

    def __init__(self, nbytes: int):
        super().__init__(fixed(nbytes), valid=fixed(nbytes))


class StructIn(BufIn):
    """Fixed-size input structure."""

    kind = "struct_in"

    def __init__(self, nbytes: int):
        super().__init__(fixed(nbytes))


class EpollEventIn(ArgSpec):
    """Pointer to a struct epoll_event. Only the events mask is
    comparable across replicas: the 64-bit data field usually holds a
    pointer, which legitimately differs under ASLR/DCL (paper §3.9)."""

    kind = "epoll_event_in"


class IovecIn(ArgSpec):
    """iovec array describing gathered input data (writev)."""

    kind = "iovec_in"

    def __init__(self, count_arg: int):
        self.count_arg = count_arg


class IovecOut(ArgSpec):
    """iovec array describing scattered output data (readv)."""

    kind = "iovec_out"

    def __init__(self, count_arg: int):
        self.count_arg = count_arg


class SyscallSpec:
    """Everything the monitors need to know about one syscall."""

    __slots__ = ("name", "args", "blocking", "io_write", "notes")

    def __init__(
        self,
        name: str,
        args: Sequence[ArgSpec],
        blocking: bool = False,
        io_write: bool = False,
        notes: str = "",
    ):
        self.name = name
        self.args = tuple(args)
        #: May the call block waiting for external input?
        self.blocking = blocking
        #: Does the call emit externally observable output?
        self.io_write = io_write
        self.notes = notes

    def out_buffers(self):
        """Indices of args that carry kernel-filled output data."""
        return [
            i
            for i, a in enumerate(self.args)
            if a.kind in ("buf_out", "struct_out", "iovec_out")
        ]

    def __repr__(self):
        return "SyscallSpec(%s)" % self.name


from repro.kernel.structs import (  # noqa: E402 - table below needs sizes
    SOCKADDR_SIZE,
    STAT_SIZE,
    TIMESPEC_SIZE,
    TIMEVAL_SIZE,
)

_ITIMERVAL_SIZE = 2 * TIMEVAL_SIZE
_ITIMERSPEC_SIZE = 2 * TIMESPEC_SIZE
_FDSET_SIZE = 128
_SYSINFO_SIZE = 64
_TMS_SIZE = 32
_RUSAGE_SIZE = 144
_UTSNAME_SIZE = 390

_SPECS = [
    # -- plain process-local getters (BASE_LEVEL unconditional) ------------
    SyscallSpec("getpid", []),
    SyscallSpec("gettid", []),
    SyscallSpec("getppid", []),
    SyscallSpec("getpgrp", []),
    SyscallSpec("getuid", []),
    SyscallSpec("geteuid", []),
    SyscallSpec("getgid", []),
    SyscallSpec("getegid", []),
    SyscallSpec("getpriority", [Reg(), Reg()]),
    SyscallSpec("capget", [Ptr(), Ptr()]),
    SyscallSpec("sched_yield", []),
    SyscallSpec("gettimeofday", [StructOut(TIMEVAL_SIZE), Ptr()]),
    SyscallSpec("clock_gettime", [Reg(), StructOut(TIMESPEC_SIZE)]),
    SyscallSpec("time", [BufOut(fixed(8), valid=fixed(8))]),
    SyscallSpec("times", [StructOut(_TMS_SIZE)]),
    SyscallSpec("getrusage", [Reg(), StructOut(_RUSAGE_SIZE)]),
    SyscallSpec("sysinfo", [StructOut(_SYSINFO_SIZE)]),
    SyscallSpec("uname", [StructOut(_UTSNAME_SIZE)]),
    SyscallSpec("getcwd", [BufOut(from_arg(1)), Reg()]),
    SyscallSpec("getitimer", [Reg(), StructOut(_ITIMERVAL_SIZE)]),
    SyscallSpec("nanosleep", [StructIn(TIMESPEC_SIZE), Ptr()], blocking=True),
    SyscallSpec("getrandom", [BufOut(from_arg(1)), Reg(), Reg()]),
    # -- NONSOCKET_RO_LEVEL ------------------------------------------------
    SyscallSpec("access", [CStr(), Reg()]),
    SyscallSpec("faccessat", [Fd(), CStr(), Reg(), Reg()]),
    SyscallSpec("lseek", [Fd(), Reg(), Reg()]),
    SyscallSpec("stat", [CStr(), StructOut(STAT_SIZE)]),
    SyscallSpec("lstat", [CStr(), StructOut(STAT_SIZE)]),
    SyscallSpec("fstat", [Fd(), StructOut(STAT_SIZE)]),
    SyscallSpec("newfstatat", [Fd(), CStr(), StructOut(STAT_SIZE), Reg()]),
    SyscallSpec("getdents", [Fd(), BufOut(from_arg(2)), Reg()]),
    SyscallSpec("readlink", [CStr(), BufOut(from_arg(2)), Reg()]),
    SyscallSpec("readlinkat", [Fd(), CStr(), BufOut(from_arg(3)), Reg()]),
    SyscallSpec("getxattr", [CStr(), CStr(), BufOut(from_arg(3)), Reg()]),
    SyscallSpec("lgetxattr", [CStr(), CStr(), BufOut(from_arg(3)), Reg()]),
    SyscallSpec("fgetxattr", [Fd(), CStr(), BufOut(from_arg(3)), Reg()]),
    SyscallSpec("alarm", [Reg()]),
    SyscallSpec(
        "setitimer", [Reg(), StructIn(_ITIMERVAL_SIZE), StructOut(_ITIMERVAL_SIZE)]
    ),
    SyscallSpec("timerfd_gettime", [Fd(), StructOut(_ITIMERSPEC_SIZE)]),
    SyscallSpec("madvise", [Ptr(), Reg(), Reg()]),
    SyscallSpec("fadvise64", [Fd(), Reg(), Reg(), Reg()]),
    SyscallSpec("read", [Fd(), BufOut(from_arg(2)), Reg()], blocking=True),
    SyscallSpec("readv", [Fd(), IovecOut(2), Reg()], blocking=True),
    SyscallSpec("pread64", [Fd(), BufOut(from_arg(2)), Reg(), Reg()], blocking=True),
    SyscallSpec("preadv", [Fd(), IovecOut(2), Reg(), Reg()], blocking=True),
    SyscallSpec(
        "select",
        [
            Reg(),
            BufOut(fixed(_FDSET_SIZE), valid=fixed(_FDSET_SIZE)),
            BufOut(fixed(_FDSET_SIZE), valid=fixed(_FDSET_SIZE)),
            BufOut(fixed(_FDSET_SIZE), valid=fixed(_FDSET_SIZE)),
            Ptr(),
        ],
        blocking=True,
    ),
    SyscallSpec("poll", [Ptr(), Reg(), Reg()], blocking=True,
                notes="pollfd array compared/replicated by the poll handler"),
    SyscallSpec("futex", [Ptr(), Reg(), Reg(), Ptr(), Ptr(), Reg()], blocking=True),
    SyscallSpec("ioctl", [Fd(), Reg(), Ptr()]),
    SyscallSpec("fcntl", [Fd(), Reg(), Reg()]),
    # -- NONSOCKET_RW_LEVEL --------------------------------------------------
    SyscallSpec("sync", [], io_write=True),
    SyscallSpec("syncfs", [Fd()], io_write=True),
    SyscallSpec("fsync", [Fd()], io_write=True),
    SyscallSpec("fdatasync", [Fd()], io_write=True),
    SyscallSpec(
        "timerfd_settime",
        [Fd(), Reg(), StructIn(_ITIMERSPEC_SIZE), StructOut(_ITIMERSPEC_SIZE)],
        io_write=True,
    ),
    SyscallSpec("write", [Fd(), BufIn(from_arg(2)), Reg()], blocking=True, io_write=True),
    SyscallSpec("writev", [Fd(), IovecIn(2), Reg()], blocking=True, io_write=True),
    SyscallSpec(
        "pwrite64", [Fd(), BufIn(from_arg(2)), Reg(), Reg()], blocking=True, io_write=True
    ),
    SyscallSpec("pwritev", [Fd(), IovecIn(2), Reg(), Reg()], blocking=True, io_write=True),
    # -- SOCKET levels --------------------------------------------------------
    SyscallSpec("epoll_wait", [Fd(), Ptr(), Reg(), Reg()], blocking=True,
                notes="epoll_event array handled by the epoll shadow map"),
    SyscallSpec(
        "recvfrom",
        [Fd(), BufOut(from_arg(2)), Reg(), Reg(), BufOut(fixed(SOCKADDR_SIZE), valid=fixed(SOCKADDR_SIZE)), Ptr()],
        blocking=True,
    ),
    SyscallSpec("recvmsg", [Fd(), Ptr(), Reg()], blocking=True),
    SyscallSpec("recvmmsg", [Fd(), Ptr(), Reg(), Reg(), Ptr()], blocking=True),
    SyscallSpec(
        "getsockname", [Fd(), BufOut(fixed(SOCKADDR_SIZE), valid=fixed(SOCKADDR_SIZE)), Ptr()]
    ),
    SyscallSpec(
        "getpeername", [Fd(), BufOut(fixed(SOCKADDR_SIZE), valid=fixed(SOCKADDR_SIZE)), Ptr()]
    ),
    SyscallSpec("getsockopt", [Fd(), Reg(), Reg(), BufOut(from_arg(4), valid=from_arg(4)), Reg()]),
    SyscallSpec(
        "sendto",
        [Fd(), BufIn(from_arg(2)), Reg(), Reg(), StructIn(SOCKADDR_SIZE), Reg()],
        blocking=True,
        io_write=True,
    ),
    SyscallSpec("sendmsg", [Fd(), Ptr(), Reg()], blocking=True, io_write=True),
    SyscallSpec("sendmmsg", [Fd(), Ptr(), Reg(), Reg()], blocking=True, io_write=True),
    SyscallSpec("sendfile", [Fd(), Fd(), Ptr(), Reg()], blocking=True, io_write=True),
    SyscallSpec("epoll_ctl", [Fd(), Reg(), Fd(), EpollEventIn()], io_write=True),
    SyscallSpec("setsockopt", [Fd(), Reg(), Reg(), BufIn(from_arg(4)), Reg()], io_write=True),
    SyscallSpec("shutdown", [Fd(), Reg()], io_write=True),
    # -- always-monitored resource management (paper §3.4) -------------------
    SyscallSpec("open", [CStr(), Reg(), Reg()]),
    SyscallSpec("openat", [Fd(), CStr(), Reg(), Reg()]),
    SyscallSpec("close", [Fd()]),
    SyscallSpec("dup", [Fd()]),
    SyscallSpec("dup2", [Fd(), Fd()]),
    SyscallSpec("pipe", [BufOut(fixed(8), valid=fixed(8))]),
    SyscallSpec("pipe2", [BufOut(fixed(8), valid=fixed(8)), Reg()]),
    SyscallSpec("socket", [Reg(), Reg(), Reg()]),
    SyscallSpec("bind", [Fd(), StructIn(SOCKADDR_SIZE), Reg()]),
    SyscallSpec("listen", [Fd(), Reg()]),
    SyscallSpec(
        "accept",
        [Fd(), BufOut(fixed(SOCKADDR_SIZE), valid=fixed(SOCKADDR_SIZE)), Ptr()],
        blocking=True,
    ),
    SyscallSpec(
        "accept4",
        [Fd(), BufOut(fixed(SOCKADDR_SIZE), valid=fixed(SOCKADDR_SIZE)), Ptr(), Reg()],
        blocking=True,
    ),
    SyscallSpec("connect", [Fd(), StructIn(SOCKADDR_SIZE), Reg()], blocking=True),
    SyscallSpec("epoll_create", [Reg()]),
    SyscallSpec("epoll_create1", [Reg()]),
    SyscallSpec("timerfd_create", [Reg(), Reg()]),
    SyscallSpec("mmap", [Ptr(), Reg(), Reg(), Reg(), Fd(), Reg()]),
    SyscallSpec("munmap", [Ptr(), Reg()]),
    SyscallSpec("mprotect", [Ptr(), Reg(), Reg()]),
    SyscallSpec("mremap", [Ptr(), Reg(), Reg(), Reg(), Ptr()]),
    SyscallSpec("brk", [Ptr()]),
    SyscallSpec("clone", [Reg(), Callable_(), Ptr()]),
    SyscallSpec("exit", [Reg()]),
    SyscallSpec("exit_group", [Reg()]),
    SyscallSpec("kill", [Reg(), Reg()]),
    SyscallSpec("tgkill", [Reg(), Reg(), Reg()]),
    SyscallSpec("rt_sigaction", [Reg(), Callable_(), Ptr()]),
    SyscallSpec("rt_sigprocmask", [Reg(), Reg(), Ptr()]),
    SyscallSpec("rt_sigpending", [Ptr()]),
    SyscallSpec("sigaltstack", [Ptr(), Ptr()]),
    SyscallSpec("pause", [], blocking=True),
    SyscallSpec("set_tid_address", [Ptr()]),
    SyscallSpec("prctl", [Reg(), Reg(), Reg(), Reg(), Reg()]),
    SyscallSpec("unlink", [CStr()], io_write=True),
    SyscallSpec("mkdir", [CStr(), Reg()], io_write=True),
    SyscallSpec("rename", [CStr(), CStr()], io_write=True),
    SyscallSpec("ftruncate", [Fd(), Reg()], io_write=True),
    SyscallSpec("shmget", [Reg(), Reg(), Reg()]),
    SyscallSpec("shmat", [Reg(), Ptr(), Reg()]),
    SyscallSpec("shmdt", [Ptr()]),
    SyscallSpec("shmctl", [Reg(), Reg(), Ptr()]),
    SyscallSpec("ipmon_register", [Reg(), Ptr(), Callable_()]),
]

SYSCALL_SPECS: Dict[str, SyscallSpec] = {spec.name: spec for spec in _SPECS}


def spec_for(name: str) -> Optional[SyscallSpec]:
    return SYSCALL_SPECS.get(name)
