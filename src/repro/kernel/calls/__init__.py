"""System-call handler modules.

Importing this package registers every handler into
:data:`repro.kernel.syscalls.SYSCALL_TABLE`.
"""

from repro.kernel.calls import (  # noqa: F401 - imported for registration
    fs_calls,
    ipc_calls,
    mm_calls,
    net_calls,
    poll_calls,
    proc_calls,
    signal_calls,
    time_calls,
)
