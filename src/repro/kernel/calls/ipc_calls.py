"""System V shared-memory calls and futexes."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.structs import TIMESPEC_SIZE, unpack_timespec
from repro.kernel.syscalls import syscall


@syscall("shmget")
def sys_shmget(kernel, thread, key, size, flags):
    return kernel.shm.get(key, size, flags, thread.process.pid)


@syscall("shmat")
def sys_shmat(kernel, thread, shmid, addr=0, flags=0):
    return kernel.shm.attach(
        thread.process, shmid, addr or None, C.PROT_READ | C.PROT_WRITE
    )


@syscall("shmdt")
def sys_shmdt(kernel, thread, addr):
    return kernel.shm.detach(thread.process, addr)


@syscall("shmctl")
def sys_shmctl(kernel, thread, shmid, cmd, buf=0):
    return kernel.shm.ctl(shmid, cmd)


@syscall("futex")
def sys_futex(kernel, thread, uaddr, op, val, timeout_addr=0, uaddr2=0, val3=0):
    operation = op & ~C.FUTEX_PRIVATE_FLAG
    space = thread.process.space
    if operation == C.FUTEX_WAIT:
        timeout_ns = None
        if timeout_addr:
            raw = space.read(timeout_addr, TIMESPEC_SIZE)
            timeout_ns = unpack_timespec(raw)
        result = yield from kernel.futexes.wait(
            kernel, thread, space, uaddr, val, timeout_ns
        )
        return result
    if operation == C.FUTEX_WAKE:
        return kernel.futexes.wake(space, uaddr, val, kernel.sim)
    return -E.ENOSYS
