"""Filesystem and descriptor system calls."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.calls._helpers import drive, get_entry
from repro.kernel.pipes import Pipe
from repro.kernel.structs import pack_dirent, read_iovecs
from repro.kernel.syscalls import syscall
from repro.kernel.vfs import (
    Directory,
    OpenFileDescription,
    RegularFile,
    Symlink,
    SyntheticFile,
)

# ---------------------------------------------------------------------------
# open / close / dup
# ---------------------------------------------------------------------------


def _do_open(kernel, thread, path: str, flags: int, mode: int) -> int:
    process = thread.process
    if path.startswith("/proc/"):
        node = kernel.procfs_lookup(thread, path)
        err = E.ENOENT if node is None else 0
    else:
        node, err = kernel.fs.resolve(path, cwd=process.cwd)
    if node is None:
        if not flags & C.O_CREAT or err != E.ENOENT:
            return -err
        parent, basename, perr = kernel.fs.parent_of(path, cwd=process.cwd)
        if parent is None:
            return -perr
        node = RegularFile(basename)
        node.refcount = 1
        parent.children[basename] = node
    elif flags & C.O_CREAT and flags & C.O_EXCL:
        return -E.EEXIST
    if flags & C.O_DIRECTORY and not isinstance(node, Directory):
        return -E.ENOTDIR
    if isinstance(node, Directory) and (flags & C.O_ACCMODE) != C.O_RDONLY:
        return -E.EISDIR
    if isinstance(node, SyntheticFile):
        node.snapshot = None  # regenerate content for this open
    if flags & C.O_TRUNC and isinstance(node, RegularFile):
        node.truncate(0)
    ofd = OpenFileDescription(node, flags)
    if flags & C.O_APPEND and isinstance(node, RegularFile):
        ofd.offset = len(node.data)
    return process.fdtable.alloc(ofd, cloexec=bool(flags & C.O_CLOEXEC))


@syscall("open")
def sys_open(kernel, thread, path_addr, flags=0, mode=0o644):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    return _do_open(kernel, thread, path, flags, mode)


@syscall("openat")
def sys_openat(kernel, thread, dirfd, path_addr, flags=0, mode=0o644):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    if not path.startswith("/") and dirfd != C.AT_FDCWD:
        return -E.EBADF  # dirfd-relative paths are out of scope
    return _do_open(kernel, thread, path, flags, mode)


@syscall("close")
def sys_close(kernel, thread, fd):
    result = thread.process.fdtable.close(fd)
    if result == 0:
        kernel.on_fd_closed(thread.process, fd)
    return result


@syscall("dup")
def sys_dup(kernel, thread, fd):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    return thread.process.fdtable.alloc(entry.ofd)


@syscall("dup2")
def sys_dup2(kernel, thread, oldfd, newfd):
    entry, err = get_entry(thread, oldfd)
    if entry is None:
        return err
    if oldfd == newfd:
        return newfd
    thread.process.fdtable.install(newfd, entry.ofd)
    return newfd


@syscall("pipe")
def sys_pipe(kernel, thread, fds_addr):
    return _do_pipe(kernel, thread, fds_addr, 0)


@syscall("pipe2")
def sys_pipe2(kernel, thread, fds_addr, flags=0):
    return _do_pipe(kernel, thread, fds_addr, flags)


def _do_pipe(kernel, thread, fds_addr, flags):
    pipe = Pipe(kernel)
    nb = flags & C.O_NONBLOCK
    rfd = thread.process.fdtable.alloc(
        OpenFileDescription(pipe.read_end, C.O_RDONLY | nb),
        cloexec=bool(flags & C.O_CLOEXEC),
    )
    wfd = thread.process.fdtable.alloc(
        OpenFileDescription(pipe.write_end, C.O_WRONLY | nb),
        cloexec=bool(flags & C.O_CLOEXEC),
    )
    if rfd < 0 or wfd < 0:
        return -E.EMFILE
    import struct

    thread.process.space.write(fds_addr, struct.pack("<ii", rfd, wfd))
    return 0


# ---------------------------------------------------------------------------
# read / write families
# ---------------------------------------------------------------------------
@syscall("read")
def sys_read(kernel, thread, fd, buf, count):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    if not entry.ofd.readable:
        return -E.EBADF
    result = yield from drive(entry.ofd.file.read(kernel, thread, entry.ofd, count))
    if isinstance(result, int):
        return result
    thread.process.space.write(buf, result)
    yield kernel.copy_cost(len(result))
    return len(result)


@syscall("pread64")
def sys_pread64(kernel, thread, fd, buf, count, offset):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.ESPIPE
    data = node.pread(offset, count)
    thread.process.space.write(buf, data)
    yield kernel.copy_cost(len(data))
    return len(data)


@syscall("readv")
def sys_readv(kernel, thread, fd, iov_addr, iovcnt):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    space = thread.process.space
    iovecs = read_iovecs(space, iov_addr, iovcnt)
    total = sum(length for _base, length in iovecs)
    result = yield from drive(entry.ofd.file.read(kernel, thread, entry.ofd, total))
    if isinstance(result, int):
        return result
    _scatter(space, iovecs, result)
    yield kernel.copy_cost(len(result))
    return len(result)


@syscall("preadv")
def sys_preadv(kernel, thread, fd, iov_addr, iovcnt, offset):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.ESPIPE
    space = thread.process.space
    iovecs = read_iovecs(space, iov_addr, iovcnt)
    total = sum(length for _base, length in iovecs)
    data = node.pread(offset, total)
    _scatter(space, iovecs, data)
    yield kernel.copy_cost(len(data))
    return len(data)


def _scatter(space, iovecs, data: bytes) -> None:
    cursor = 0
    for base, length in iovecs:
        if cursor >= len(data):
            break
        chunk = data[cursor : cursor + length]
        space.write(base, chunk)
        cursor += len(chunk)


@syscall("write")
def sys_write(kernel, thread, fd, buf, count):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    if not entry.ofd.writable:
        return -E.EBADF
    data = thread.process.space.read(buf, count)
    yield kernel.copy_cost(len(data))
    result = yield from drive(entry.ofd.file.write(kernel, thread, entry.ofd, data))
    return result


@syscall("pwrite64")
def sys_pwrite64(kernel, thread, fd, buf, count, offset):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.ESPIPE
    data = thread.process.space.read(buf, count)
    yield kernel.copy_cost(len(data))
    return node.pwrite(offset, data)


@syscall("writev")
def sys_writev(kernel, thread, fd, iov_addr, iovcnt):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    space = thread.process.space
    data = _gather(space, read_iovecs(space, iov_addr, iovcnt))
    yield kernel.copy_cost(len(data))
    result = yield from drive(entry.ofd.file.write(kernel, thread, entry.ofd, data))
    return result


@syscall("pwritev")
def sys_pwritev(kernel, thread, fd, iov_addr, iovcnt, offset):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.ESPIPE
    space = thread.process.space
    data = _gather(space, read_iovecs(space, iov_addr, iovcnt))
    yield kernel.copy_cost(len(data))
    return node.pwrite(offset, data)


def _gather(space, iovecs) -> bytes:
    return b"".join(space.read(base, length) for base, length in iovecs)


@syscall("lseek")
def sys_lseek(kernel, thread, fd, offset, whence):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if node.kind in ("pipe", "sock", "listen", "epoll"):
        return -E.ESPIPE
    if whence == C.SEEK_SET:
        new = offset
    elif whence == C.SEEK_CUR:
        new = entry.ofd.offset + offset
    elif whence == C.SEEK_END:
        new = node.size() + offset
    else:
        return -E.EINVAL
    if new < 0:
        return -E.EINVAL
    entry.ofd.offset = new
    return new


@syscall("ftruncate")
def sys_ftruncate(kernel, thread, fd, length):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.EINVAL
    node.truncate(length)
    return 0


@syscall("sendfile")
def sys_sendfile(kernel, thread, out_fd, in_fd, offset_addr, count):
    out_entry, err = get_entry(thread, out_fd)
    if out_entry is None:
        return err
    in_entry, err = get_entry(thread, in_fd)
    if in_entry is None:
        return err
    node = in_entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.EINVAL
    space = thread.process.space
    if offset_addr:
        offset = space.read_u64(offset_addr)
    else:
        offset = in_entry.ofd.offset
    data = node.pread(offset, count)
    result = yield from drive(
        out_entry.ofd.file.write(kernel, thread, out_entry.ofd, data)
    )
    if isinstance(result, int) and result < 0:
        return result
    sent = result
    if offset_addr:
        space.write_u64(offset_addr, offset + sent)
    else:
        in_entry.ofd.offset = offset + sent
    return sent


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------
def _stat_path(kernel, thread, path_addr, statbuf, follow=True):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    if path.startswith("/proc/"):
        node = kernel.procfs_lookup(thread, path)
        err = E.ENOENT if node is None else 0
    else:
        node, err = kernel.fs.resolve(path, cwd=thread.process.cwd, follow=follow)
    if node is None:
        return -err
    thread.process.space.write(statbuf, node.stat_bytes())
    return 0


@syscall("stat")
def sys_stat(kernel, thread, path_addr, statbuf):
    return _stat_path(kernel, thread, path_addr, statbuf, follow=True)


@syscall("lstat")
def sys_lstat(kernel, thread, path_addr, statbuf):
    return _stat_path(kernel, thread, path_addr, statbuf, follow=False)


@syscall("newfstatat")
def sys_newfstatat(kernel, thread, dirfd, path_addr, statbuf, flags=0):
    return _stat_path(kernel, thread, path_addr, statbuf, follow=True)


@syscall("fstat")
def sys_fstat(kernel, thread, fd, statbuf):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    thread.process.space.write(statbuf, entry.ofd.file.stat_bytes())
    return 0


def _access_impl(kernel, thread, path_addr, mode):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    node, err = kernel.fs.resolve(path, cwd=thread.process.cwd)
    if node is None:
        return -err
    return 0


@syscall("access")
def sys_access(kernel, thread, path_addr, mode):
    return _access_impl(kernel, thread, path_addr, mode)


@syscall("faccessat")
def sys_faccessat(kernel, thread, dirfd, path_addr, mode, flags=0):
    return _access_impl(kernel, thread, path_addr, mode)


def _readlink_impl(kernel, thread, path_addr, buf, bufsize):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    node, err = kernel.fs.resolve(path, cwd=thread.process.cwd, follow=False)
    if node is None:
        return -err
    if not isinstance(node, Symlink):
        return -E.EINVAL
    target = node.target.encode()[:bufsize]
    thread.process.space.write(buf, target)
    return len(target)


@syscall("readlink")
def sys_readlink(kernel, thread, path_addr, buf, bufsize):
    return _readlink_impl(kernel, thread, path_addr, buf, bufsize)


@syscall("readlinkat")
def sys_readlinkat(kernel, thread, dirfd, path_addr, buf, bufsize):
    return _readlink_impl(kernel, thread, path_addr, buf, bufsize)


def _getxattr_impl(kernel, thread, path_addr, name_addr, buf, size):
    space = thread.process.space
    path = space.read_cstr(path_addr).decode("utf-8", "replace")
    name = space.read_cstr(name_addr)
    node, err = kernel.fs.resolve(path, cwd=thread.process.cwd)
    if node is None:
        return -err
    value = getattr(node, "xattrs", {}).get(name)
    if value is None:
        return -E.ENODATA
    if size == 0:
        return len(value)
    if size < len(value):
        return -E.ERANGE
    space.write(buf, value)
    return len(value)


@syscall("getxattr")
def sys_getxattr(kernel, thread, path_addr, name_addr, buf, size):
    return _getxattr_impl(kernel, thread, path_addr, name_addr, buf, size)


@syscall("lgetxattr")
def sys_lgetxattr(kernel, thread, path_addr, name_addr, buf, size):
    return _getxattr_impl(kernel, thread, path_addr, name_addr, buf, size)


@syscall("fgetxattr")
def sys_fgetxattr(kernel, thread, fd, name_addr, buf, size):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    name = thread.process.space.read_cstr(name_addr)
    value = getattr(entry.ofd.file, "xattrs", {}).get(name)
    if value is None:
        return -E.ENODATA
    if size == 0:
        return len(value)
    if size < len(value):
        return -E.ERANGE
    thread.process.space.write(buf, value)
    return len(value)


@syscall("getdents")
def sys_getdents(kernel, thread, fd, dirp, count):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, Directory):
        return -E.ENOTDIR
    entries = node.entries()
    out = bytearray()
    index = entry.ofd.offset
    while index < len(entries):
        name, child = entries[index]
        record = pack_dirent(child.ino, name.encode(), 0)
        if len(out) + len(record) > count:
            break
        out += record
        index += 1
    if index == entry.ofd.offset and index < len(entries):
        return -E.EINVAL  # buffer too small for even one record
    entry.ofd.offset = index
    thread.process.space.write(dirp, bytes(out))
    return len(out)


# ---------------------------------------------------------------------------
# namespace modification
# ---------------------------------------------------------------------------
@syscall("unlink")
def sys_unlink(kernel, thread, path_addr):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    parent, basename, err = kernel.fs.parent_of(path, cwd=thread.process.cwd)
    if parent is None:
        return -err
    node = parent.children.get(basename)
    if node is None:
        return -E.ENOENT
    if isinstance(node, Directory):
        return -E.EISDIR
    del parent.children[basename]
    node.release()
    return 0


@syscall("mkdir")
def sys_mkdir(kernel, thread, path_addr, mode=0o755):
    path = thread.process.space.read_cstr(path_addr).decode("utf-8", "replace")
    parent, basename, err = kernel.fs.parent_of(path, cwd=thread.process.cwd)
    if parent is None:
        return -err
    if basename in parent.children:
        return -E.EEXIST
    child = Directory(basename)
    child.refcount = 1
    parent.children[basename] = child
    return 0


@syscall("rename")
def sys_rename(kernel, thread, old_addr, new_addr):
    space = thread.process.space
    old = space.read_cstr(old_addr).decode("utf-8", "replace")
    new = space.read_cstr(new_addr).decode("utf-8", "replace")
    old_parent, old_name, err = kernel.fs.parent_of(old, cwd=thread.process.cwd)
    if old_parent is None:
        return -err
    node = old_parent.children.get(old_name)
    if node is None:
        return -E.ENOENT
    new_parent, new_name, err = kernel.fs.parent_of(new, cwd=thread.process.cwd)
    if new_parent is None:
        return -err
    del old_parent.children[old_name]
    node.name = new_name
    new_parent.children[new_name] = node
    return 0


# ---------------------------------------------------------------------------
# sync family, fcntl, ioctl, advice
# ---------------------------------------------------------------------------
@syscall("sync")
def sys_sync(kernel, thread):
    return 0


@syscall("syncfs")
def sys_syncfs(kernel, thread, fd):
    entry, err = get_entry(thread, fd)
    return 0 if entry is not None else err


@syscall("fsync")
def sys_fsync(kernel, thread, fd):
    entry, err = get_entry(thread, fd)
    return 0 if entry is not None else err


@syscall("fdatasync")
def sys_fdatasync(kernel, thread, fd):
    entry, err = get_entry(thread, fd)
    return 0 if entry is not None else err


@syscall("fadvise64")
def sys_fadvise64(kernel, thread, fd, offset=0, length=0, advice=0):
    entry, err = get_entry(thread, fd)
    return 0 if entry is not None else err


FIONREAD = 0x541B
FIONBIO = 0x5421


@syscall("ioctl")
def sys_ioctl(kernel, thread, fd, cmd, arg=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    if cmd == FIONBIO:
        enable = thread.process.space.read_u32(arg) if arg else 0
        if enable:
            entry.ofd.flags |= C.O_NONBLOCK
        else:
            entry.ofd.flags &= ~C.O_NONBLOCK
        kernel.on_fd_flags_changed(thread.process, fd)
        return 0
    if cmd == FIONREAD:
        node = entry.ofd.file
        available = 0
        if hasattr(node, "rcvbuf"):
            available = len(node.rcvbuf)
        elif hasattr(node, "pipe"):
            available = len(node.pipe.buffer)
        elif isinstance(node, RegularFile):
            available = max(0, len(node.data) - entry.ofd.offset)
        if arg:
            thread.process.space.write_u32(arg, available)
        return 0
    return -E.ENOTTY


@syscall("fcntl")
def sys_fcntl(kernel, thread, fd, cmd, arg=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    if cmd == C.F_GETFL:
        return entry.ofd.flags
    if cmd == C.F_SETFL:
        settable = C.O_NONBLOCK | C.O_APPEND
        entry.ofd.flags = (entry.ofd.flags & ~settable) | (arg & settable)
        kernel.on_fd_flags_changed(thread.process, fd)
        return 0
    if cmd == C.F_GETFD:
        return C.FD_CLOEXEC if entry.cloexec else 0
    if cmd == C.F_SETFD:
        entry.cloexec = bool(arg & C.FD_CLOEXEC)
        return 0
    if cmd == C.F_DUPFD:
        return thread.process.fdtable.alloc(entry.ofd, lowest=arg)
    return -E.EINVAL
