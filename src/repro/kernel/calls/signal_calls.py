"""Signal-related system calls."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.process import SignalAction
from repro.kernel.syscalls import syscall


@syscall("rt_sigaction")
def sys_rt_sigaction(kernel, thread, signo, handler=None, old_addr=0):
    if not 1 <= signo < C.NSIG:
        return -E.EINVAL
    if signo in (C.SIGKILL, C.SIGSTOP) and handler not in (None, C.SIG_DFL):
        return -E.EINVAL
    if handler is None:
        return 0  # query only
    thread.process.signal_actions[signo] = SignalAction(handler)
    return 0


@syscall("rt_sigprocmask")
def sys_rt_sigprocmask(kernel, thread, how, mask_bits, oldset_addr=0):
    old = 0
    for signo in thread.sigmask:
        old |= 1 << (signo - 1)
    if oldset_addr:
        thread.process.space.write_u64(oldset_addr, old)
    new_signals = {
        signo for signo in range(1, C.NSIG) if mask_bits & (1 << (signo - 1))
    }
    if how == C.SIG_BLOCK:
        thread.sigmask |= new_signals
    elif how == C.SIG_UNBLOCK:
        thread.sigmask -= new_signals
    elif how == C.SIG_SETMASK:
        thread.sigmask = set(new_signals)
    else:
        return -E.EINVAL
    thread.sigmask.discard(C.SIGKILL)
    thread.sigmask.discard(C.SIGSTOP)
    return 0


@syscall("rt_sigpending")
def sys_rt_sigpending(kernel, thread, set_addr):
    bits = 0
    for pending in thread.pending:
        bits |= 1 << (pending.signo - 1)
    if set_addr:
        thread.process.space.write_u64(set_addr, bits)
    return 0


@syscall("sigaltstack")
def sys_sigaltstack(kernel, thread, ss=0, old_ss=0):
    return 0


@syscall("kill")
def sys_kill(kernel, thread, pid, signo):
    if signo == 0:
        return 0 if kernel.process_by_pid(pid) else -E.ESRCH
    target = kernel.process_by_pid(pid)
    if target is None:
        return -E.ESRCH
    kernel.send_signal_to_process(target, signo, sender_pid=thread.process.pid)
    return 0


@syscall("tgkill")
def sys_tgkill(kernel, thread, tgid, tid, signo):
    target = kernel.thread_by_tid(tid)
    if target is None or target.process.pid != tgid:
        return -E.ESRCH
    if signo == 0:
        return 0
    kernel.send_signal_to_thread(target, signo, sender_pid=thread.process.pid)
    return 0
