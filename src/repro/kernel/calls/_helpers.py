"""Shared plumbing for syscall handlers."""

from __future__ import annotations

import types

from repro.kernel import errno_codes as E


def drive(value):
    """Run ``value`` if it is a coroutine, else return it as-is.

    File-object methods may be plain functions or coroutines; handlers
    use ``result = yield from drive(obj.read(...))`` uniformly.
    """
    if isinstance(value, types.GeneratorType):
        result = yield from value
        return result
    return value


def get_entry(thread, fd: int):
    """Look up an fd table entry; returns (entry, 0) or (None, -EBADF)."""
    if not isinstance(fd, int) or fd < 0:
        return None, -E.EBADF
    entry = thread.process.fdtable.get(fd)
    if entry is None:
        return None, -E.EBADF
    return entry, 0


def ms_to_ns(ms: int):
    """Convert a poll-style millisecond timeout (-1 = infinite) to ns."""
    if ms is None or ms < 0:
        return None
    return ms * 1_000_000
