"""Process, thread, identity and scheduling system calls."""

from __future__ import annotations

import struct

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.exits import ProcessExitRequest, ThreadExitRequest
from repro.kernel.syscalls import syscall
from repro.kernel.waitq import wait_interruptible
from repro.sim import Event


@syscall("getpid")
def sys_getpid(kernel, thread):
    return thread.process.pid


@syscall("gettid")
def sys_gettid(kernel, thread):
    return thread.tid


@syscall("getppid")
def sys_getppid(kernel, thread):
    return thread.process.ppid


@syscall("getpgrp")
def sys_getpgrp(kernel, thread):
    return thread.process.pgid


@syscall("getuid")
def sys_getuid(kernel, thread):
    return thread.process.uid


@syscall("geteuid")
def sys_geteuid(kernel, thread):
    return thread.process.euid


@syscall("getgid")
def sys_getgid(kernel, thread):
    return thread.process.gid


@syscall("getegid")
def sys_getegid(kernel, thread):
    return thread.process.egid


@syscall("getpriority")
def sys_getpriority(kernel, thread, which=0, who=0):
    return 20  # nice 0, Linux getpriority bias


@syscall("capget")
def sys_capget(kernel, thread, hdr=0, data=0):
    return 0


@syscall("getcwd")
def sys_getcwd(kernel, thread, buf, size):
    cwd = thread.process.cwd.encode() + b"\x00"
    if size < len(cwd):
        return -E.ERANGE
    thread.process.space.write(buf, cwd)
    return len(cwd)


@syscall("sched_yield")
def sys_sched_yield(kernel, thread):
    return 0


@syscall("uname")
def sys_uname(kernel, thread, buf):
    out = bytearray()
    for key in ("sysname", "nodename", "release", "version", "machine"):
        field = C.UTSNAME[key].encode()[:64]
        out += field + b"\x00" * (65 - len(field))
    out += b"\x00" * 65  # domainname
    thread.process.space.write(buf, bytes(out))
    return 0


@syscall("sysinfo")
def sys_sysinfo(kernel, thread, buf):
    uptime_s = kernel.sim.now // 1_000_000_000
    data = struct.pack(
        "<qQQQQQQQ",
        uptime_s,
        0,  # loads[0]
        0,
        0,
        kernel.config.memory_bytes,
        kernel.config.memory_bytes // 2,
        0,
        0,
    )
    thread.process.space.write(buf, data)
    return 0


@syscall("times")
def sys_times(kernel, thread, buf):
    process = thread.process
    ticks = 100  # CLK_TCK
    utime = process.utime_ns * ticks // 1_000_000_000
    stime = process.stime_ns * ticks // 1_000_000_000
    if buf:
        thread.process.space.write(buf, struct.pack("<qqqq", utime, stime, 0, 0))
    return kernel.sim.now * ticks // 1_000_000_000


@syscall("getrusage")
def sys_getrusage(kernel, thread, who, buf):
    process = thread.process
    out = bytearray(144)
    struct.pack_into("<qq", out, 0, process.utime_ns // 1_000_000_000,
                     (process.utime_ns % 1_000_000_000) // 1000)
    struct.pack_into("<qq", out, 16, process.stime_ns // 1_000_000_000,
                     (process.stime_ns % 1_000_000_000) // 1000)
    thread.process.space.write(buf, bytes(out))
    return 0


@syscall("prctl")
def sys_prctl(kernel, thread, option=0, arg2=0, arg3=0, arg4=0, arg5=0):
    return 0


@syscall("set_tid_address")
def sys_set_tid_address(kernel, thread, addr=0):
    return thread.tid


@syscall("getrandom")
def sys_getrandom(kernel, thread, buf, count, flags=0):
    data = kernel.random_bytes(count)
    thread.process.space.write(buf, data)
    return count


@syscall("clone")
def sys_clone(kernel, thread, flags, entry=None, arg=None):
    if not flags & C.CLONE_THREAD:
        return -E.ENOSYS  # fork() is out of scope; see DESIGN.md
    if kernel.thread_spawner is None:
        return -E.ENOSYS
    child = kernel.thread_spawner(thread.process, entry, arg)
    return child.tid


@syscall("exit")
def sys_exit(kernel, thread, code=0):
    raise ThreadExitRequest(code)


@syscall("exit_group")
def sys_exit_group(kernel, thread, code=0):
    raise ProcessExitRequest(code)


@syscall("pause")
def sys_pause(kernel, thread):
    never = Event("pause")
    status, _ = yield from wait_interruptible(thread, never)
    if status == "interrupted":
        return -E.EINTR
    return -E.EINTR
