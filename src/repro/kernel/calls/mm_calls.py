"""Memory-management system calls."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.calls._helpers import get_entry
from repro.kernel.memory import MemoryFault, SharedRegion, page_align_up
from repro.kernel.syscalls import syscall
from repro.kernel.vfs import RegularFile


@syscall("mmap")
def sys_mmap(kernel, thread, addr, length, prot, flags, fd=-1, offset=0):
    space = thread.process.space
    if length <= 0:
        return -E.EINVAL
    fixed = bool(flags & C.MAP_FIXED)
    if flags & C.MAP_ANONYMOUS:
        region = None
        name = "anon"
        if flags & C.MAP_SHARED:
            region = SharedRegion(page_align_up(length), "anon-shared")
            name = "anon-shared"
        mapping = space.map(
            addr or None,
            length,
            prot,
            name=name,
            region=region,
            shared=bool(flags & C.MAP_SHARED),
            fixed=fixed,
        )
        return mapping.start
    # File-backed mapping
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    node = entry.ofd.file
    if not isinstance(node, RegularFile):
        return -E.ENODEV
    if flags & C.MAP_SHARED:
        # Shared file mappings are rejected: the MVEE forbids them anyway
        # (paper §2.1) and private mappings cover the benchmarks.
        return -E.EINVAL
    region = SharedRegion(page_align_up(length), "file:%s" % node.name)
    snippet = node.pread(offset, length)
    region.data[: len(snippet)] = snippet
    mapping = space.map(
        addr or None,
        length,
        prot,
        name="file:%s" % node.name,
        region=region,
        fixed=fixed,
    )
    return mapping.start


@syscall("munmap")
def sys_munmap(kernel, thread, addr, length):
    if addr & C.PAGE_MASK or length <= 0:
        return -E.EINVAL
    thread.process.space.unmap(addr, length)
    return 0


@syscall("mprotect")
def sys_mprotect(kernel, thread, addr, length, prot):
    if addr & C.PAGE_MASK:
        return -E.EINVAL
    try:
        return thread.process.space.protect(addr, length, prot)
    except MemoryFault:
        return -E.ENOMEM


@syscall("mremap")
def sys_mremap(kernel, thread, old_addr, old_size, new_size, flags=0, new_addr=0):
    space = thread.process.space
    mapping = space.find_mapping(old_addr)
    if mapping is None or mapping.start != old_addr:
        return -E.EFAULT
    if new_size <= old_size:
        if new_size < old_size:
            space.unmap(old_addr + page_align_up(new_size), old_size - new_size)
        return old_addr
    # Grow: move to a fresh range, copying contents.
    old_data = space.read(old_addr, min(old_size, mapping.length), check_prot=False)
    prot = mapping.prot
    name = mapping.name
    space.unmap(old_addr, old_size)
    new_mapping = space.map(None, new_size, prot, name=name)
    space.write(new_mapping.start, old_data, check_prot=False)
    return new_mapping.start


@syscall("brk")
def sys_brk(kernel, thread, addr):
    return thread.process.space.brk(addr)


@syscall("madvise")
def sys_madvise(kernel, thread, addr, length, advice):
    return 0
