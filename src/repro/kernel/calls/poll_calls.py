"""select / poll / epoll system calls."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.calls._helpers import get_entry, ms_to_ns
from repro.kernel.epoll_obj import EpollInstance
from repro.kernel.structs import (
    EPOLL_EVENT_SIZE,
    POLLFD_SIZE,
    TIMEVAL_SIZE,
    pack_epoll_event,
    pack_pollfd,
    unpack_epoll_event,
    unpack_pollfd,
)
from repro.kernel.syscalls import syscall
from repro.kernel.vfs import OpenFileDescription
from repro.kernel.waitq import wait_interruptible

FDSET_BYTES = 128


@syscall("poll")
def sys_poll(kernel, thread, fds_addr, nfds, timeout_ms):
    space = thread.process.space
    timeout_ns = ms_to_ns(timeout_ms)
    entries = []
    for index in range(nfds):
        raw = space.read(fds_addr + index * POLLFD_SIZE, POLLFD_SIZE)
        fd, events, _revents = unpack_pollfd(raw)
        entry = thread.process.fdtable.get(fd) if fd >= 0 else None
        entries.append((fd, events, entry))
    while True:
        ready = 0
        for index, (fd, events, entry) in enumerate(entries):
            if fd < 0:
                revents = 0
            elif entry is None:
                revents = C.POLLNVAL
            else:
                mask = entry.ofd.file.poll_mask(kernel)
                revents = mask & (events | C.POLLERR | C.POLLHUP)
            space.write(
                fds_addr + index * POLLFD_SIZE, pack_pollfd(fd, events, revents)
            )
            if revents:
                ready += 1
        if ready or timeout_ns == 0:
            return ready
        registered = []
        for _fd, _events, entry in entries:
            if entry is not None:
                ev = entry.ofd.file.pollq.register()
                registered.append((entry.ofd.file.pollq, ev))
        if not registered:
            return 0
        merged = kernel.merge_events([ev for _q, ev in registered])
        status, _ = yield from wait_interruptible(thread, merged, timeout_ns)
        for queue, ev in registered:
            queue.unregister(ev)
        if status == "interrupted":
            return -E.EINTR
        if status == "timeout":
            timeout_ns = 0  # one final scan, then report


@syscall("select")
def sys_select(kernel, thread, nfds, readfds, writefds, exceptfds, timeout_addr):
    space = thread.process.space
    timeout_ns = None
    if timeout_addr:
        import struct

        sec, usec = struct.unpack("<qq", space.read(timeout_addr, TIMEVAL_SIZE))
        timeout_ns = sec * 1_000_000_000 + usec * 1000

    def load(addr):
        if not addr:
            return None
        return bytearray(space.read(addr, FDSET_BYTES))

    want_read = load(readfds)
    want_write = load(writefds)
    want_except = load(exceptfds)

    def bit(bitmap, fd):
        return bitmap is not None and bool(bitmap[fd // 8] & (1 << (fd % 8)))

    while True:
        out_read = bytearray(FDSET_BYTES)
        out_write = bytearray(FDSET_BYTES)
        out_except = bytearray(FDSET_BYTES)
        ready = 0
        watched = []
        for fd in range(min(nfds, FDSET_BYTES * 8)):
            interested = bit(want_read, fd) or bit(want_write, fd) or bit(
                want_except, fd
            )
            if not interested:
                continue
            entry = thread.process.fdtable.get(fd)
            if entry is None:
                return -E.EBADF
            watched.append(entry)
            mask = entry.ofd.file.poll_mask(kernel)
            if bit(want_read, fd) and mask & (C.POLLIN | C.POLLHUP | C.POLLERR):
                out_read[fd // 8] |= 1 << (fd % 8)
                ready += 1
            if bit(want_write, fd) and mask & (C.POLLOUT | C.POLLERR):
                out_write[fd // 8] |= 1 << (fd % 8)
                ready += 1
            if bit(want_except, fd) and mask & C.POLLERR:
                out_except[fd // 8] |= 1 << (fd % 8)
                ready += 1
        if ready or timeout_ns == 0:
            if readfds:
                space.write(readfds, bytes(out_read))
            if writefds:
                space.write(writefds, bytes(out_write))
            if exceptfds:
                space.write(exceptfds, bytes(out_except))
            return ready
        registered = []
        for entry in watched:
            ev = entry.ofd.file.pollq.register()
            registered.append((entry.ofd.file.pollq, ev))
        if not registered:
            return 0
        merged = kernel.merge_events([ev for _q, ev in registered])
        status, _ = yield from wait_interruptible(thread, merged, timeout_ns)
        for queue, ev in registered:
            queue.unregister(ev)
        if status == "interrupted":
            return -E.EINTR
        if status == "timeout":
            timeout_ns = 0


# ---------------------------------------------------------------------------
# epoll
# ---------------------------------------------------------------------------
@syscall("epoll_create")
def sys_epoll_create(kernel, thread, size=0):
    if size < 0:
        return -E.EINVAL
    return _epoll_create(kernel, thread, 0)


@syscall("epoll_create1")
def sys_epoll_create1(kernel, thread, flags=0):
    return _epoll_create(kernel, thread, flags)


def _epoll_create(kernel, thread, flags):
    instance = EpollInstance()
    ofd = OpenFileDescription(instance, C.O_RDWR)
    return thread.process.fdtable.alloc(ofd, cloexec=bool(flags & C.O_CLOEXEC))


@syscall("epoll_ctl")
def sys_epoll_ctl(kernel, thread, epfd, op, fd, event_addr=0):
    entry, err = get_entry(thread, epfd)
    if entry is None:
        return err
    instance = entry.ofd.file
    if not isinstance(instance, EpollInstance):
        return -E.EINVAL
    target, err = get_entry(thread, fd)
    if target is None:
        return err
    events = data = 0
    if op != C.EPOLL_CTL_DEL:
        raw = thread.process.space.read(event_addr, EPOLL_EVENT_SIZE)
        events, data = unpack_epoll_event(raw)
    result = instance.ctl(op, fd, events, data, target.ofd.file)
    if result == 0:
        instance.notify_pollers(kernel)
    return result


@syscall("epoll_wait")
def sys_epoll_wait(kernel, thread, epfd, events_addr, maxevents, timeout_ms):
    entry, err = get_entry(thread, epfd)
    if entry is None:
        return err
    instance = entry.ofd.file
    if not isinstance(instance, EpollInstance):
        return -E.EINVAL
    if maxevents <= 0:
        return -E.EINVAL
    timeout_ns = ms_to_ns(timeout_ms)
    result = yield from instance.wait(kernel, thread, maxevents, timeout_ns)
    if isinstance(result, int):
        return result
    space = thread.process.space
    for index, (fd, revents, data) in enumerate(result):
        space.write(
            events_addr + index * EPOLL_EVENT_SIZE, pack_epoll_event(revents, data)
        )
    return len(result)
