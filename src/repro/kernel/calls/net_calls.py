"""Socket system calls."""

from __future__ import annotations

import struct

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.calls._helpers import drive, get_entry
from repro.kernel.sockets import ListeningSocket, StreamSocket, connect_sockets
from repro.kernel.structs import (
    SOCKADDR_SIZE,
    pack_sockaddr,
    unpack_sockaddr,
)
from repro.kernel.syscalls import syscall
from repro.kernel.vfs import OpenFileDescription
from repro.kernel.waitq import wait_interruptible


def _host_ip(thread) -> str:
    return getattr(thread.process, "host_ip", "127.0.0.1")


@syscall("socket")
def sys_socket(kernel, thread, domain, type_, protocol=0):
    if domain not in (C.AF_INET, C.AF_UNIX):
        return -E.EINVAL
    base_type = type_ & ~(C.SOCK_NONBLOCK | C.SOCK_CLOEXEC)
    if base_type != C.SOCK_STREAM:
        return -E.EINVAL  # datagram sockets are out of scope
    sock = StreamSocket(kernel, _host_ip(thread))
    flags = C.O_RDWR
    if type_ & C.SOCK_NONBLOCK:
        flags |= C.O_NONBLOCK
    ofd = OpenFileDescription(sock, flags)
    return thread.process.fdtable.alloc(ofd, cloexec=bool(type_ & C.SOCK_CLOEXEC))


@syscall("bind")
def sys_bind(kernel, thread, fd, addr_ptr, addrlen):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    raw = thread.process.space.read(addr_ptr, SOCKADDR_SIZE)
    _family, ip, port = unpack_sockaddr(raw)
    sock.local_addr = (ip if ip != "0.0.0.0" else _host_ip(thread), port)
    sock.requested_addr = (ip, port)
    return 0


@syscall("listen")
def sys_listen(kernel, thread, fd, backlog=128):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if isinstance(sock, ListeningSocket):
        return 0
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    if sock.connected:
        return -E.EISCONN
    listener = ListeningSocket(kernel, sock.host_ip, name="listen:%d" % fd)
    listener.local_addr = sock.local_addr
    listener.backlog_limit = max(1, backlog)
    listener.sockopts = dict(sock.sockopts)
    bind_addr = getattr(sock, "requested_addr", sock.local_addr)
    result = kernel.network.bind_listener(
        (bind_addr[0], sock.local_addr[1]), listener
    )
    if result < 0:
        return result
    # Swap the OFD's file object: the fd now refers to the listener.
    listener.refcount += 1
    old = entry.ofd.file
    entry.ofd.file = listener
    old.release()
    ctl = getattr(kernel, "admission_control", None)
    if ctl is not None:
        ctl.attach(listener)
    return 0


def _do_accept(kernel, thread, fd, addr_ptr, len_ptr, flags):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    listener = entry.ofd.file
    if not isinstance(listener, ListeningSocket):
        return -E.EINVAL
    result = yield from listener.accept_one(
        kernel, thread, entry.ofd.nonblocking
    )
    if isinstance(result, int):
        return result
    conn = result
    ofd_flags = C.O_RDWR
    if flags & C.SOCK_NONBLOCK:
        ofd_flags |= C.O_NONBLOCK
    ofd = OpenFileDescription(conn, ofd_flags)
    newfd = thread.process.fdtable.alloc(
        ofd, cloexec=bool(flags & C.SOCK_CLOEXEC)
    )
    if newfd < 0:
        return newfd
    if addr_ptr and conn.peer_addr is not None:
        thread.process.space.write(
            addr_ptr, pack_sockaddr(C.AF_INET, conn.peer_addr[0], conn.peer_addr[1])
        )
        if len_ptr:
            thread.process.space.write_u32(len_ptr, SOCKADDR_SIZE)
    kernel.on_fd_opened(thread.process, newfd)
    return newfd


@syscall("accept")
def sys_accept(kernel, thread, fd, addr_ptr=0, len_ptr=0):
    result = yield from _do_accept(kernel, thread, fd, addr_ptr, len_ptr, 0)
    return result


@syscall("accept4")
def sys_accept4(kernel, thread, fd, addr_ptr=0, len_ptr=0, flags=0):
    result = yield from _do_accept(kernel, thread, fd, addr_ptr, len_ptr, flags)
    return result


@syscall("connect")
def sys_connect(kernel, thread, fd, addr_ptr, addrlen):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    if sock.connected:
        return -E.EISCONN
    if sock.connecting:
        return -E.EALREADY
    raw = thread.process.space.read(addr_ptr, SOCKADDR_SIZE)
    _family, ip, port = unpack_sockaddr(raw)
    result = yield from drive(connect_sockets(kernel, sock, (ip, port)))
    if result < 0:
        return result
    if entry.ofd.nonblocking:
        return -E.EINPROGRESS
    while sock.connecting:
        event = sock.connq.register()
        status, _ = yield from wait_interruptible(thread, event)
        if status == "interrupted":
            sock.connq.unregister(event)
            return -E.EINTR
    if sock.error:
        err_code = sock.error
        sock.error = 0
        return -err_code
    return 0


@syscall("shutdown")
def sys_shutdown(kernel, thread, fd, how):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    return sock.shutdown(how)


@syscall("getsockname")
def sys_getsockname(kernel, thread, fd, addr_ptr, len_ptr):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, (StreamSocket, ListeningSocket)):
        return -E.ENOTSOCK
    thread.process.space.write(
        addr_ptr, pack_sockaddr(C.AF_INET, sock.local_addr[0], sock.local_addr[1])
    )
    if len_ptr:
        thread.process.space.write_u32(len_ptr, SOCKADDR_SIZE)
    return 0


@syscall("getpeername")
def sys_getpeername(kernel, thread, fd, addr_ptr, len_ptr):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    if sock.peer_addr is None:
        return -E.ENOTCONN
    thread.process.space.write(
        addr_ptr, pack_sockaddr(C.AF_INET, sock.peer_addr[0], sock.peer_addr[1])
    )
    if len_ptr:
        thread.process.space.write_u32(len_ptr, SOCKADDR_SIZE)
    return 0


@syscall("getsockopt")
def sys_getsockopt(kernel, thread, fd, level, optname, optval, optlen):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, (StreamSocket, ListeningSocket)):
        return -E.ENOTSOCK
    if level == C.SOL_SOCKET and optname == C.SO_ERROR:
        value = getattr(sock, "error", 0)
        if isinstance(sock, StreamSocket):
            sock.error = 0
    else:
        value = sock.sockopts.get((level, optname), 0)
    if optval:
        thread.process.space.write_u32(optval, value)
    return 0


@syscall("setsockopt")
def sys_setsockopt(kernel, thread, fd, level, optname, optval, optlen):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, (StreamSocket, ListeningSocket)):
        return -E.ENOTSOCK
    value = 0
    if optval and optlen >= 4:
        value = thread.process.space.read_u32(optval)
    sock.sockopts[(level, optname)] = value
    return 0


@syscall("sendto")
def sys_sendto(kernel, thread, fd, buf, length, flags=0, dest_addr=0, addrlen=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    data = thread.process.space.read(buf, length)
    yield kernel.copy_cost(len(data))
    result = sock.send_bytes(data)
    if result == -E.EPIPE:
        kernel.send_signal_to_thread(thread, C.SIGPIPE)
    return result


@syscall("recvfrom")
def sys_recvfrom(kernel, thread, fd, buf, length, flags=0, src_addr=0, len_ptr=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    result = yield from sock.read(kernel, thread, entry.ofd, length)
    if isinstance(result, int):
        return result
    thread.process.space.write(buf, result)
    yield kernel.copy_cost(len(result))
    if src_addr and sock.peer_addr is not None:
        thread.process.space.write(
            src_addr, pack_sockaddr(C.AF_INET, sock.peer_addr[0], sock.peer_addr[1])
        )
        if len_ptr:
            thread.process.space.write_u32(len_ptr, SOCKADDR_SIZE)
    return len(result)


# msghdr layout (simplified): iov_addr u64, iovlen u64
MSGHDR_FMT = "<QQ"
MSGHDR_SIZE = struct.calcsize(MSGHDR_FMT)


def _read_msg_iovecs(space, msg_addr):
    iov_addr, iovlen = struct.unpack(
        MSGHDR_FMT, space.read(msg_addr, MSGHDR_SIZE)
    )
    from repro.kernel.structs import read_iovecs

    return read_iovecs(space, iov_addr, iovlen)


@syscall("sendmsg")
def sys_sendmsg(kernel, thread, fd, msg_addr, flags=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    space = thread.process.space
    iovecs = _read_msg_iovecs(space, msg_addr)
    data = b"".join(space.read(base, length) for base, length in iovecs)
    yield kernel.copy_cost(len(data))
    result = sock.send_bytes(data)
    if result == -E.EPIPE:
        kernel.send_signal_to_thread(thread, C.SIGPIPE)
    return result


@syscall("recvmsg")
def sys_recvmsg(kernel, thread, fd, msg_addr, flags=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    sock = entry.ofd.file
    if not isinstance(sock, StreamSocket):
        return -E.ENOTSOCK
    space = thread.process.space
    iovecs = _read_msg_iovecs(space, msg_addr)
    total = sum(length for _base, length in iovecs)
    result = yield from sock.read(kernel, thread, entry.ofd, total)
    if isinstance(result, int):
        return result
    cursor = 0
    for base, length in iovecs:
        if cursor >= len(result):
            break
        chunk = result[cursor : cursor + length]
        space.write(base, chunk)
        cursor += len(chunk)
    yield kernel.copy_cost(len(result))
    return len(result)


@syscall("sendmmsg")
def sys_sendmmsg(kernel, thread, fd, msgvec_addr, vlen, flags=0):
    sent = 0
    for index in range(vlen):
        result = yield from sys_sendmsg(
            kernel, thread, fd, msgvec_addr + index * MSGHDR_SIZE, flags
        )
        if result < 0:
            return result if sent == 0 else sent
        sent += 1
    return sent


@syscall("recvmmsg")
def sys_recvmmsg(kernel, thread, fd, msgvec_addr, vlen, flags=0, timeout=0):
    received = 0
    for index in range(vlen):
        result = yield from sys_recvmsg(
            kernel, thread, fd, msgvec_addr + index * MSGHDR_SIZE, flags
        )
        if result < 0:
            return result if received == 0 else received
        received += 1
        if result == 0:
            break
    return received
