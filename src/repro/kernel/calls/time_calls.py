"""Clocks, sleeping and timers."""

from __future__ import annotations

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.calls._helpers import get_entry
from repro.kernel.structs import (
    TIMESPEC_SIZE,
    TIMEVAL_SIZE,
    pack_timespec,
    pack_timeval,
    unpack_timespec,
)
from repro.kernel.syscalls import syscall
from repro.kernel.timers import TimerFD
from repro.kernel.waitq import wait_interruptible
from repro.sim import Event


@syscall("gettimeofday")
def sys_gettimeofday(kernel, thread, tv_addr, tz_addr=0):
    if tv_addr:
        thread.process.space.write(tv_addr, pack_timeval(kernel.realtime_ns()))
    return 0


@syscall("clock_gettime")
def sys_clock_gettime(kernel, thread, clockid, ts_addr):
    if clockid == C.CLOCK_REALTIME:
        ns = kernel.realtime_ns()
    else:
        ns = kernel.sim.now
    if ts_addr:
        thread.process.space.write(ts_addr, pack_timespec(ns))
    return 0


@syscall("time")
def sys_time(kernel, thread, t_addr=0):
    seconds = kernel.realtime_ns() // 1_000_000_000
    if t_addr:
        thread.process.space.write(t_addr, seconds.to_bytes(8, "little"))
    return seconds


@syscall("nanosleep")
def sys_nanosleep(kernel, thread, req_addr, rem_addr=0):
    raw = thread.process.space.read(req_addr, TIMESPEC_SIZE)
    duration = unpack_timespec(raw)
    if duration < 0:
        return -E.EINVAL
    never = Event("nanosleep")
    status, _ = yield from wait_interruptible(thread, never, duration)
    if status == "interrupted":
        if rem_addr:
            thread.process.space.write(rem_addr, pack_timespec(0))
        return -E.EINTR
    return 0


@syscall("alarm")
def sys_alarm(kernel, thread, seconds):
    process = thread.process
    now = kernel.sim.now
    previous = 0
    if process.itimer_real is not None:
        previous = max(0, (process.itimer_real[0] - now)) // 1_000_000_000
    if seconds == 0:
        process.itimer_real = None
        return previous
    expiry = now + seconds * 1_000_000_000
    process.itimer_real = (expiry, 0)
    kernel.schedule_itimer(process, expiry)
    return previous


@syscall("setitimer")
def sys_setitimer(kernel, thread, which, new_addr, old_addr=0):
    process = thread.process
    space = process.space
    now = kernel.sim.now
    if old_addr:
        remaining = interval = 0
        if process.itimer_real is not None:
            remaining = max(0, process.itimer_real[0] - now)
            interval = process.itimer_real[1]
        space.write(old_addr, pack_timeval(interval) + pack_timeval(remaining))
    if not new_addr:
        return 0
    raw = space.read(new_addr, 2 * TIMEVAL_SIZE)
    interval_ns = _timeval_ns(raw[:TIMEVAL_SIZE])
    value_ns = _timeval_ns(raw[TIMEVAL_SIZE:])
    if value_ns == 0:
        process.itimer_real = None
        return 0
    expiry = now + value_ns
    process.itimer_real = (expiry, interval_ns)
    kernel.schedule_itimer(process, expiry)
    return 0


@syscall("getitimer")
def sys_getitimer(kernel, thread, which, curr_addr):
    process = thread.process
    now = kernel.sim.now
    remaining = interval = 0
    if process.itimer_real is not None:
        remaining = max(0, process.itimer_real[0] - now)
        interval = process.itimer_real[1]
    thread.process.space.write(
        curr_addr, pack_timeval(interval) + pack_timeval(remaining)
    )
    return 0


def _timeval_ns(raw: bytes) -> int:
    import struct

    sec, usec = struct.unpack("<qq", raw)
    return sec * 1_000_000_000 + usec * 1000


# ---------------------------------------------------------------------------
# timerfd
# ---------------------------------------------------------------------------
@syscall("timerfd_create")
def sys_timerfd_create(kernel, thread, clockid=C.CLOCK_MONOTONIC, flags=0):
    timer = TimerFD(kernel, clockid)
    from repro.kernel.vfs import OpenFileDescription

    ofd = OpenFileDescription(timer, C.O_RDWR | (flags & C.O_NONBLOCK))
    return thread.process.fdtable.alloc(ofd, cloexec=bool(flags & C.O_CLOEXEC))


@syscall("timerfd_settime")
def sys_timerfd_settime(kernel, thread, fd, flags, new_addr, old_addr=0):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    timer = entry.ofd.file
    if not isinstance(timer, TimerFD):
        return -E.EINVAL
    space = thread.process.space
    raw = space.read(new_addr, 2 * TIMESPEC_SIZE)
    interval_ns = unpack_timespec(raw[:TIMESPEC_SIZE])
    value_ns = unpack_timespec(raw[TIMESPEC_SIZE:])
    prev_value, prev_interval = timer.settime(value_ns, interval_ns)
    if old_addr:
        space.write(old_addr, pack_timespec(prev_interval) + pack_timespec(prev_value))
    return 0


@syscall("timerfd_gettime")
def sys_timerfd_gettime(kernel, thread, fd, curr_addr):
    entry, err = get_entry(thread, fd)
    if entry is None:
        return err
    timer = entry.ofd.file
    if not isinstance(timer, TimerFD):
        return -E.EINVAL
    remaining, interval = timer.gettime()
    thread.process.space.write(
        curr_addr, pack_timespec(interval) + pack_timespec(remaining)
    )
    return 0
