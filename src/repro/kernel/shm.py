"""System V shared memory.

The paper's IP-MON uses SysV IPC to create and map the replication
buffer into every replica (§3.5). The MVEE restricts which segments may
be created because shared writable memory between replicas is an
unmonitored bi-directional channel (§2.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.memory import SharedRegion, page_align_up


class ShmSegment:
    __slots__ = ("shmid", "key", "region", "size", "rmid_pending", "creator_pid")

    def __init__(self, shmid: int, key: int, size: int, creator_pid: int):
        self.shmid = shmid
        self.key = key
        self.size = size
        self.region = SharedRegion(page_align_up(size), "shm:%d" % shmid)
        self.rmid_pending = False
        self.creator_pid = creator_pid


class ShmManager:
    def __init__(self):
        self._segments: Dict[int, ShmSegment] = {}
        self._by_key: Dict[int, int] = {}
        self._ids = itertools.count(1)

    def get(self, key: int, size: int, flags: int, pid: int) -> int:
        """shmget(2); returns shmid or -errno."""
        if key != C.IPC_PRIVATE and key in self._by_key:
            if flags & C.IPC_CREAT and flags & C.IPC_EXCL:
                return -E.EEXIST
            shmid = self._by_key[key]
            if size > self._segments[shmid].size:
                return -E.EINVAL
            return shmid
        if not flags & C.IPC_CREAT and key != C.IPC_PRIVATE:
            return -E.ENOENT
        if size <= 0:
            return -E.EINVAL
        shmid = next(self._ids)
        segment = ShmSegment(shmid, key, size, pid)
        self._segments[shmid] = segment
        if key != C.IPC_PRIVATE:
            self._by_key[key] = shmid
        return shmid

    def segment(self, shmid: int) -> Optional[ShmSegment]:
        return self._segments.get(shmid)

    def attach(self, process, shmid: int, addr: Optional[int], prot: int) -> int:
        """shmat(2); returns the mapped address or -errno."""
        segment = self._segments.get(shmid)
        if segment is None:
            return -E.EINVAL
        mapping = process.space.map(
            addr,
            len(segment.region),
            prot,
            name="shm:%d" % shmid,
            region=segment.region,
            shared=True,
        )
        process.shm_attachments[mapping.start] = shmid
        return mapping.start

    def detach(self, process, addr: int) -> int:
        """shmdt(2)."""
        shmid = process.shm_attachments.get(addr)
        if shmid is None:
            return -E.EINVAL
        segment = self._segments.get(shmid)
        length = len(segment.region) if segment else 0
        process.space.unmap(addr, length)
        del process.shm_attachments[addr]
        if (
            segment is not None
            and segment.rmid_pending
            and segment.region.attach_count == 0
        ):
            self._destroy(segment)
        return 0

    def ctl(self, shmid: int, cmd: int) -> int:
        segment = self._segments.get(shmid)
        if segment is None:
            return -E.EINVAL
        if cmd == C.IPC_RMID:
            segment.rmid_pending = True
            if segment.region.attach_count == 0:
                self._destroy(segment)
            return 0
        return -E.EINVAL

    def _destroy(self, segment: ShmSegment) -> None:
        self._segments.pop(segment.shmid, None)
        if segment.key in self._by_key and self._by_key[segment.key] == segment.shmid:
            del self._by_key[segment.key]
