"""timerfd objects and interval-timer helpers."""

from __future__ import annotations

from typing import Optional

from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.vfs import FileObject
from repro.kernel.waitq import WaitQueue, wait_interruptible


class TimerFD(FileObject):
    kind = "timerfd"

    def __init__(self, kernel, clockid: int = C.CLOCK_MONOTONIC, name: str = "timerfd"):
        super().__init__(name)
        self.kernel = kernel
        self.clockid = clockid
        self.next_expiry_ns: Optional[int] = None
        self.interval_ns = 0
        self.expirations = 0
        self._generation = 0
        self.dataq = WaitQueue("timerfd")

    def st_mode(self) -> int:
        return C.S_IFCHR | 0o600

    def on_last_close(self) -> None:
        # Disarm: nothing references the fd anymore, so the periodic
        # rescheduling must stop (otherwise the timer outlives the
        # process and keeps the simulation alive forever).
        self._generation += 1
        self.next_expiry_ns = None
        self.interval_ns = 0

    def settime(self, value_ns: int, interval_ns: int) -> tuple:
        """Arm (or disarm with value 0) the timer; returns the previous
        (remaining_ns, interval_ns) setting."""
        now = self.kernel.sim.now
        previous = (
            max(0, (self.next_expiry_ns or now) - now) if self.next_expiry_ns else 0,
            self.interval_ns,
        )
        self._generation += 1
        self.expirations = 0
        if value_ns == 0:
            self.next_expiry_ns = None
            self.interval_ns = 0
            return previous
        self.next_expiry_ns = now + value_ns
        self.interval_ns = interval_ns
        self._schedule(self._generation)
        return previous

    def gettime(self) -> tuple:
        now = self.kernel.sim.now
        remaining = max(0, (self.next_expiry_ns or now) - now) if self.next_expiry_ns else 0
        return remaining, self.interval_ns

    def _schedule(self, generation: int) -> None:
        expiry = self.next_expiry_ns
        if expiry is None:
            return

        def _fire():
            if generation != self._generation or self.next_expiry_ns is None:
                return
            self.expirations += 1
            if self.interval_ns > 0:
                self.next_expiry_ns += self.interval_ns
                self._schedule(generation)
            else:
                self.next_expiry_ns = None
            self.dataq.notify_all(self.kernel.sim)
            self.notify_pollers(self.kernel)

        self.kernel.sim.call_at(expiry, _fire)

    def poll_mask(self, kernel) -> int:
        return C.POLLIN if self.expirations > 0 else 0

    def read(self, kernel, thread, ofd, count: int):
        if count < 8:
            return -E.EINVAL
        while self.expirations == 0:
            if ofd.nonblocking:
                return -E.EAGAIN
            event = self.dataq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                self.dataq.unregister(event)
                return -E.EINTR
        value = self.expirations
        self.expirations = 0
        return value.to_bytes(8, "little")
