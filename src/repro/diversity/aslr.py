"""Address-space layout randomization for replica processes."""

from __future__ import annotations

import random
from typing import List

from repro.kernel.constants import PAGE_SIZE

# Layout anchor points (mirroring x86-64 Linux).
MMAP_TOP = 0x7FFF_FFFF_F000
BRK_ANCHOR = 0x5655_0000_0000
CODE_ANCHOR = 0x0000_5500_0000_0000

#: Entropy (in bits of page-granular randomness) matching Linux defaults.
MMAP_ENTROPY_BITS = 28
BRK_ENTROPY_BITS = 13
CODE_ENTROPY_BITS = 17

DEFAULT_CODE_SIZE = 0x20_0000  # 2 MiB of text


class ReplicaLayout:
    """The address-space decisions for one replica.

    Attributes:
        index: replica number (0 = the eventual master).
        code_base/code_size: where the program text is mapped (randomized
            and, under DCL, disjoint across replicas).
        mmap_base: top of the mmap area.
        brk_base: heap anchor.
    """

    __slots__ = ("index", "code_base", "code_size", "mmap_base", "brk_base", "seed")

    def __init__(self, index, code_base, code_size, mmap_base, brk_base, seed):
        self.index = index
        self.code_base = code_base
        self.code_size = code_size
        self.mmap_base = mmap_base
        self.brk_base = brk_base
        self.seed = seed

    def describe(self) -> str:
        return "replica %d: code@0x%x mmap@0x%x brk@0x%x" % (
            self.index,
            self.code_base,
            self.mmap_base,
            self.brk_base,
        )

    def __repr__(self):
        return "ReplicaLayout(%s)" % self.describe()


def _page_random(rng: random.Random, bits: int) -> int:
    return rng.getrandbits(bits) * PAGE_SIZE


def make_layouts(
    count: int,
    seed: int = 0,
    aslr: bool = True,
    dcl: bool = True,
    code_size: int = DEFAULT_CODE_SIZE,
    code_anchor: int = CODE_ANCHOR,
) -> List["ReplicaLayout"]:
    """Generate ``count`` diversified replica layouts.

    With ``dcl`` enabled, code regions are guaranteed pairwise disjoint:
    each replica's text is placed in its own slice of the code arena, so
    no executable byte shares an address across replicas.

    ``code_anchor`` relocates the whole code arena; a heterogeneous
    cluster gives every node its own anchor
    (:class:`repro.diversity.profile.NodeProfile`), so the per-node
    families are disjoint across *nodes*, not just within one family.
    """
    rng = random.Random(seed ^ 0xD15EA5E)
    layouts: List[ReplicaLayout] = []
    # DCL: partition the code arena into per-replica exclusive slices.
    slice_size = max(code_size * 4, 1 << 28)
    for index in range(count):
        if aslr:
            mmap_base = MMAP_TOP - _page_random(rng, MMAP_ENTROPY_BITS)
            brk_base = BRK_ANCHOR + _page_random(rng, BRK_ENTROPY_BITS)
        else:
            mmap_base = MMAP_TOP - (1 << 30)
            brk_base = BRK_ANCHOR
        if dcl:
            slice_base = code_anchor + index * slice_size
            jitter = _page_random(rng, CODE_ENTROPY_BITS) if aslr else 0
            code_base = slice_base + (jitter % max(PAGE_SIZE, slice_size - code_size))
            code_base &= ~(PAGE_SIZE - 1)
        elif aslr:
            code_base = code_anchor + _page_random(rng, CODE_ENTROPY_BITS)
        else:
            code_base = code_anchor
        layouts.append(
            ReplicaLayout(index, code_base, code_size, mmap_base, brk_base, seed + index)
        )
    return layouts


def identical_layouts(count: int, code_size: int = DEFAULT_CODE_SIZE) -> List[ReplicaLayout]:
    """Undiversified layouts (for attack-scenario baselines): every
    replica has the same addresses, so a single absolute-address payload
    works everywhere."""
    return [
        ReplicaLayout(i, CODE_ANCHOR, code_size, MMAP_TOP - (1 << 30), BRK_ANCHOR, i)
        for i in range(count)
    ]
