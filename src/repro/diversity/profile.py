"""Per-node diversity profiles (DMON-style heterogeneity, DESIGN.md §13).

A homogeneous cluster draws every node's layout from **one** seeded
family: leak node 0's layout (or the cluster seed) and an attacker can
reconstruct every other node's addresses — a single exposure defeats
the whole cluster, exactly the gap DMON closes by running variants on
heterogeneous platforms.

A :class:`NodeProfile` is the simulated analogue of a heterogeneous
platform. Each node gets:

* **its own DCL arena** — a ``ARENA_STRIDE``-sized private slab of the
  code address space (``CODE_ANCHOR + node * ARENA_STRIDE``). A node's
  whole replica family lives inside its arena, so families are pairwise
  disjoint *across nodes*, not just slices within one family.
* **its own ASLR seed stream** — the cluster seed is mixed through
  splitmix64 with the node index before it ever seeds an RNG. The mix
  is one-way: a leaked per-node seed does not invert to the cluster
  seed, so one node's stream says nothing about any sibling's.
* **its own guest ABI** (:class:`~repro.core.canonical.AbiProfile`) —
  divergent scalar widths and struct padding, so even *data* encodings
  differ byte-for-byte across nodes and raw-byte comparison stops
  working by construction (forcing the canonical digest pipeline).

With ``heterogeneous=False`` (the default) every node shares the
canonical profile and layout construction follows the exact historical
RNG stream — byte-identical to the pre-profile design.
"""

from __future__ import annotations

from typing import List

from repro.core.canonical import CANONICAL_ABI, AbiProfile
from repro.diversity.aslr import (
    CODE_ANCHOR,
    DEFAULT_CODE_SIZE,
    ReplicaLayout,
    make_layouts,
)

#: Private code-arena slab per node: 2**34 bytes holds 64 DCL slices
#: (``max(code_size * 4, 1 << 28)`` each), and the anchor gap up to
#: ``BRK_ANCHOR`` fits ~85 arenas — far beyond simulated cluster sizes.
ARENA_STRIDE = 1 << 34

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One splitmix64 output step: a 64-bit one-way avalanche mix."""
    value = (value + _SPLITMIX_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def node_seed(cluster_seed: int, node: int) -> int:
    """The per-node ASLR seed: deterministic per (cluster_seed, node),
    one-way in both inputs."""
    return _splitmix64((cluster_seed & _MASK64) + (node + 1) * _SPLITMIX_GAMMA)


class NodeProfile:
    """One node's diversity transform: arena, seed stream, and ABI."""

    __slots__ = (
        "node",
        "cluster_seed",
        "heterogeneous",
        "aslr_seed",
        "arena_base",
        "abi",
    )

    def __init__(
        self,
        node: int,
        cluster_seed: int,
        heterogeneous: bool,
        aslr_seed: int,
        arena_base: int,
        abi: AbiProfile,
    ):
        self.node = node
        self.cluster_seed = cluster_seed
        self.heterogeneous = heterogeneous
        self.aslr_seed = aslr_seed
        self.arena_base = arena_base
        self.abi = abi

    def make_family(
        self,
        count: int,
        aslr: bool = True,
        dcl: bool = True,
        code_size: int = DEFAULT_CODE_SIZE,
    ) -> List[ReplicaLayout]:
        """This node's layout family, entirely inside its own arena and
        drawn from its own seed stream."""
        return make_layouts(
            count,
            seed=self.aslr_seed,
            aslr=aslr,
            dcl=dcl,
            code_size=code_size,
            code_anchor=self.arena_base,
        )

    def make_layout(
        self,
        aslr: bool = True,
        dcl: bool = True,
        code_size: int = DEFAULT_CODE_SIZE,
    ) -> ReplicaLayout:
        """The single layout this node actually boots (index rewritten
        to the node number so process naming stays stable)."""
        layout = self.make_family(1, aslr=aslr, dcl=dcl, code_size=code_size)[0]
        layout.index = self.node
        return layout

    def __repr__(self):
        return (
            "NodeProfile(node=%d, hetero=%s, arena=0x%x, %r)"
            % (self.node, self.heterogeneous, self.arena_base, self.abi)
        )


def make_node_profiles(
    count: int,
    cluster_seed: int = 0,
    heterogeneous: bool = False,
) -> List[NodeProfile]:
    """Assign one diversity profile per node.

    Deterministic per ``(cluster_seed, node)``; the homogeneous default
    gives every node the canonical profile (shared seed, shared arena,
    canonical ABI) so nothing downstream changes.
    """
    profiles: List[NodeProfile] = []
    for node in range(count):
        if not heterogeneous:
            profiles.append(
                NodeProfile(
                    node,
                    cluster_seed,
                    False,
                    aslr_seed=cluster_seed,
                    arena_base=CODE_ANCHOR,
                    abi=CANONICAL_ABI,
                )
            )
            continue
        seed = node_seed(cluster_seed, node)
        abi_bits = _splitmix64(seed ^ 0xAB1D1FF5)
        abi = AbiProfile(
            scalar_width=16 if abi_bits & 1 else 8,
            item_pad=(abi_bits >> 1) % 8,
        )
        profiles.append(
            NodeProfile(
                node,
                cluster_seed,
                True,
                aslr_seed=seed,
                arena_base=CODE_ANCHOR + node * ARENA_STRIDE,
                abi=abi,
            )
        )
    return profiles
