"""Automated software diversity for replicas (paper §4).

ReMon runs replicas under the combined diversification of ASLR and
Disjoint Code Layouts (DCL). ASLR randomizes each replica's mmap, heap
and stack bases; DCL additionally guarantees that no virtual address
holds executable code in more than one replica, which defeats
traditional and ROP code-reuse attacks outright (an absolute code
address can be valid in at most one replica, so the same malicious
payload cannot work everywhere).
"""

from repro.diversity.aslr import ReplicaLayout, make_layouts
from repro.diversity.dcl import layouts_code_disjoint
from repro.diversity.profile import NodeProfile, make_node_profiles

__all__ = [
    "NodeProfile",
    "ReplicaLayout",
    "layouts_code_disjoint",
    "make_layouts",
    "make_node_profiles",
]
