"""Disjoint Code Layouts (Volckaert et al., TDSC 2015 — paper ref [40]).

DCL guarantees that no virtual address is mapped executable in more than
one replica. A code-reuse payload (ROP chain, return-to-libc address)
that is valid in one replica is therefore guaranteed invalid in every
other replica, so diversified replicas cannot be compromised
consistently — the attack produces observable divergence instead.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def layouts_code_disjoint(layouts: Iterable) -> bool:
    """Check the DCL invariant over a set of replica layouts."""
    ranges: List[Tuple[int, int]] = sorted(
        (layout.code_base, layout.code_base + layout.code_size) for layout in layouts
    )
    for (start_a, end_a), (start_b, _end_b) in zip(ranges, ranges[1:]):
        if start_b < end_a:
            return False
    return True


def spaces_code_disjoint(spaces: Iterable) -> bool:
    """Check the DCL invariant over live address spaces: no executable
    page may be mapped at the same address in two spaces."""
    from repro.kernel.constants import PROT_EXEC

    exec_ranges: List[Tuple[int, int]] = []
    for space in spaces:
        for mapping in space.mappings():
            if mapping.prot & PROT_EXEC:
                exec_ranges.append((mapping.start, mapping.end))
    exec_ranges.sort()
    for (start_a, end_a), (start_b, _end_b) in zip(exec_ranges, exec_ranges[1:]):
        if start_b < end_a:
            return False
    return True


def address_valid_in(layouts: Iterable, addr: int) -> List[int]:
    """Which replicas consider ``addr`` a valid code address? Under DCL
    the answer has at most one element — the property attacks rely on."""
    return [
        layout.index
        for layout in layouts
        if layout.code_base <= addr < layout.code_base + layout.code_size
    ]
