"""The divergence flight recorder and its postmortem report.

Inspired by rr's approach of cheap always-on recording turned into
postmortem evidence: each replica gets a bounded ring of its last K
syscall/rendezvous events, and when the MVEE declares divergence or
quarantines a replica the recorder snapshots those tails together with
the mismatch itself (replica, syscall, offending argument blobs),
lane/owner attribution, and the backoff state of the RB and rendezvous
machinery at that moment.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional


def _clip(value, limit: int = 160) -> str:
    text = repr(value)
    if len(text) > limit:
        text = text[:limit] + "...(%d chars)" % len(text)
    return text


class FlightRecorder:
    """Per-replica bounded rings of recent events."""

    def __init__(self, ring_size: int = 64):
        self.ring_size = ring_size
        self.rings: Dict[int, deque] = {}
        self.recorded = 0

    def record(self, replica: int, time_ns: int, kind: str, name: str,
               **attrs) -> None:
        ring = self.rings.get(replica)
        if ring is None:
            ring = self.rings[replica] = deque(maxlen=self.ring_size)
        event = {"t": time_ns, "kind": kind, "name": name}
        if attrs:
            event.update(attrs)
        ring.append(event)
        self.recorded += 1

    @property
    def dropped(self) -> int:
        """Events that have rotated out of the rings."""
        return self.recorded - sum(len(ring) for ring in self.rings.values())

    def tails(self) -> Dict[int, List[dict]]:
        """Snapshot of every replica's ring, oldest event first."""
        return {replica: list(ring)
                for replica, ring in sorted(self.rings.items())}


class Postmortem:
    """Everything known at the moment a divergence/quarantine fired."""

    def __init__(self, reason: str, report, tails: Dict[int, List[dict]],
                 attribution: Optional[dict] = None,
                 backoff: Optional[dict] = None,
                 recorder_stats: Optional[dict] = None):
        self.reason = reason
        self.time_ns = getattr(report, "time_ns", 0)
        self.vtid = getattr(report, "vtid", None)
        self.syscall = getattr(report, "syscall", None)
        self.detail = getattr(report, "detail", None)
        self.detected_by = getattr(report, "detected_by", None)
        self.kind = getattr(report, "kind", None)
        self.replica = getattr(report, "replica", None)
        args = getattr(report, "replica_args", None)
        self.replica_args = [_clip(blob) for blob in args] if args else []
        self.tails = tails
        self.attribution = attribution or {}
        self.backoff = backoff or {}
        self.recorder_stats = recorder_stats or {}

    def to_json(self) -> dict:
        return {
            "reason": self.reason,
            "time_ns": self.time_ns,
            "vtid": self.vtid,
            "syscall": self.syscall,
            "detail": self.detail,
            "detected_by": self.detected_by,
            "kind": self.kind,
            "replica": self.replica,
            "replica_args": self.replica_args,
            "tails": {str(k): v for k, v in self.tails.items()},
            "attribution": self.attribution,
            "backoff": self.backoff,
            "recorder": self.recorder_stats,
        }

    def to_text(self) -> str:
        lines = [
            "=== postmortem: %s ===" % self.reason,
            "at t=%dns  vtid=%r  syscall=%r  detected_by=%r  kind=%r"
            % (self.time_ns, self.vtid, self.syscall, self.detected_by,
               self.kind),
        ]
        if self.replica is not None:
            lines.append("diverging replica: %d" % self.replica)
        if self.detail:
            lines.append("detail: %s" % self.detail)
        for index, blob in enumerate(self.replica_args):
            lines.append("arg blob[%d]: %s" % (index, blob))
        if self.attribution:
            lines.append("attribution: %s"
                         % json.dumps(self.attribution, sort_keys=True,
                                      default=repr))
        if self.backoff:
            lines.append("backoff state: %s"
                         % json.dumps(self.backoff, sort_keys=True,
                                      default=repr))
        for replica, tail in sorted(self.tails.items()):
            lines.append("replica %d tail (%d events):" % (replica, len(tail)))
            for event in tail:
                lines.append("  %s" % json.dumps(event, sort_keys=True,
                                                 default=repr))
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return "Postmortem(%s, replica=%r, syscall=%r)" % (
            self.reason, self.replica, self.syscall,
        )
