"""Cross-run metric diffing over Prometheus text exports.

:meth:`MetricsRegistry.to_prometheus` is the registry's durable
serialization: everything the live registry knows — counters, gauges,
histogram buckets, the legacy stats view — survives the round trip
through the text exposition format. This module parses such exports
back into mergeable snapshots so two runs can be compared *after the
fact*, without replaying either one:

``python -m repro.obs.diff a.prom b.prom``
    Diff run B against run A. Scalars are reported by relative change;
    histograms are de-cumulated back into bucket counts so the report
    can say not just *that* a choke-point histogram moved but *where*
    (count, mean, p50/p99 shift), ranked by how far the mean moved.
    Exits 1 when anything differs (diff-like, so CI can gate on it).

``python -m repro.obs.diff --merge a.prom b.prom [...]``
    Fold any number of exports into one (scalars add, histogram buckets
    add — the same layout-checked addition as :meth:`Histogram.merge`)
    and print the merged exposition to stdout. This is how per-shard or
    per-node exports become one cluster-wide view.

The parser accepts exactly what ``to_prometheus`` emits (TYPE comments,
``name value`` samples, ``name_bucket{le="..."}`` series); unknown
comment lines are ignored so hand-annotated exports still load.
"""

from __future__ import annotations

import argparse
import re
import sys
from math import ceil
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

_TYPE_RE = re.compile(r"^# TYPE (\S+) (\S+)$")
_BUCKET_RE = re.compile(r'^(\S+)_bucket\{le="([^"]+)"\} (\S+)$')
_SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*) (\S+)$")


class MetricsDiffError(ReproError):
    """A Prometheus export could not be parsed or merged."""


def _num(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


class ParsedHistogram:
    """One histogram reconstructed from ``_bucket``/``_sum``/``_count``
    series: bounds, *per-bucket* (de-cumulated) counts incl. overflow."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str):
        self.name = name
        self.bounds: List[int] = []
        self.counts: List[float] = []
        self.sum: float = 0
        self.count: float = 0

    def merge(self, other: "ParsedHistogram") -> None:
        if other.bounds != self.bounds:
            raise MetricsDiffError(
                "cannot merge %r: bucket layouts differ" % self.name
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Bucket-upper-bound percentile, like :meth:`Histogram.percentile`
        but without min/max clamping (the export does not carry them)."""
        if self.count == 0:
            return None
        rank = max(1, ceil(self.count * p / 100.0))
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return float("inf")
                return self.bounds[index]
        return float("inf")


class Snapshot:
    """One parsed export: scalar samples plus reconstructed histograms."""

    def __init__(self):
        self.types: Dict[str, str] = {}
        self.scalars: Dict[str, float] = {}
        self.histograms: Dict[str, ParsedHistogram] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, source: str = "<export>") -> "Snapshot":
        snap = cls()
        cumulative: Dict[str, List[Tuple[float, float]]] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                match = _TYPE_RE.match(line)
                if match:
                    snap.types[match.group(1)] = match.group(2)
                continue
            match = _BUCKET_RE.match(line)
            if match and snap.types.get(match.group(1)) == "histogram":
                bound = (
                    float("inf") if match.group(2) == "+Inf"
                    else float(match.group(2))
                )
                cumulative.setdefault(match.group(1), []).append(
                    (bound, _num(match.group(3)))
                )
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise MetricsDiffError(
                    "%s:%d: unparseable sample %r" % (source, lineno, line)
                )
            snap.scalars[match.group(1)] = _num(match.group(2))
        for name, series in cumulative.items():
            snap.histograms[name] = snap._build_histogram(name, series)
        return snap

    def _build_histogram(self, name: str,
                         series: List[Tuple[float, float]]) -> ParsedHistogram:
        hist = ParsedHistogram(name)
        previous = 0.0
        for bound, running in series:
            if bound != float("inf"):
                hist.bounds.append(int(bound))
            hist.counts.append(running - previous)
            previous = running
        hist.count = self.scalars.pop(name + "_count", previous)
        hist.sum = self.scalars.pop(name + "_sum", 0)
        return hist

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle.read(), source=path)

    # ------------------------------------------------------------------
    def merge(self, other: "Snapshot") -> None:
        """Fold ``other`` into this snapshot (scalars and buckets add)."""
        for name, value in other.scalars.items():
            self.scalars[name] = self.scalars.get(name, 0) + value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                copy = ParsedHistogram(name)
                copy.bounds = list(hist.bounds)
                copy.counts = list(hist.counts)
                copy.sum = hist.sum
                copy.count = hist.count
                self.histograms[name] = copy
            else:
                mine.merge(hist)
        for name, kind in other.types.items():
            self.types.setdefault(name, kind)

    def to_prometheus(self) -> str:
        """Re-emit the snapshot in the exposition format it came from."""
        lines: List[str] = []
        for name in sorted(self.scalars):
            lines.append("# TYPE %s %s" % (name, self.types.get(name, "gauge")))
            lines.append("%s %s" % (name, self.scalars[name]))
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append("# TYPE %s histogram" % name)
            running = 0.0
            for bound, bucket_count in zip(hist.bounds, hist.counts):
                running += bucket_count
                lines.append('%s_bucket{le="%d"} %s' % (name, bound, int(running)))
            running += hist.counts[-1]
            lines.append('%s_bucket{le="+Inf"} %s' % (name, int(running)))
            lines.append("%s_sum %s" % (name, hist.sum))
            lines.append("%s_count %s" % (name, hist.count))
        return "\n".join(lines) + "\n"


#: Series families the repo's own exporters emit, for ``--only``
#: discoverability (any free-form prefix still works). One entry per
#: subsystem: ``dist`` is the cluster adapter's whole namespace while
#: ``dist_canonical`` narrows to the §13 canonicalization pipeline
#: (``dist_canonical_wait_ns``, ``dist_canonical_calls``,
#: ``dist_canonical_cost_ns``).
KNOWN_PREFIXES = (
    "dist",
    "dist_canonical",
    "lifecycle",
    "net",
    "wall_time",
    "replicas_quarantined",
    "master_promotions",
    "faults_injected",
)


def _matches_prefix(name: str, prefix: str) -> bool:
    """True when ``name`` carries ``prefix``, ignoring the ``repro_`` /
    ``repro_stat_`` namespaces ``to_prometheus`` prepends — so
    ``--only lifecycle`` selects ``repro_stat_lifecycle_rejoin_ns``."""
    for spelling in (prefix, "repro_" + prefix, "repro_stat_" + prefix):
        if name.startswith(spelling):
            return True
    return False


def restrict(snapshot: Snapshot, prefix: str) -> Snapshot:
    """A view of ``snapshot`` keeping only series matching ``prefix``."""
    kept = Snapshot()
    kept.scalars = {
        name: value for name, value in snapshot.scalars.items()
        if _matches_prefix(name, prefix)
    }
    kept.histograms = {
        name: hist for name, hist in snapshot.histograms.items()
        if _matches_prefix(name, prefix)
    }
    kept.types = {
        name: kind for name, kind in snapshot.types.items()
        if _matches_prefix(name, prefix)
    }
    return kept


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------
def _relative(before: float, after: float) -> float:
    if before == after:
        return 0.0
    if before == 0:
        return float("inf")
    return (after - before) / abs(before)


def _fmt_pct(rel: float) -> str:
    if rel == float("inf"):
        return "new"
    return "%+.1f%%" % (rel * 100.0)


def diff_report(a: Snapshot, b: Snapshot, top: int = 10) -> Tuple[List[str], int]:
    """Human-readable diff of ``b`` against ``a``.

    Returns ``(lines, differences)`` where ``differences`` counts every
    scalar/histogram that moved (including appearing or disappearing).
    """
    lines: List[str] = []
    differences = 0

    scalar_moves = []
    for name in sorted(set(a.scalars) | set(b.scalars)):
        before = a.scalars.get(name, 0)
        after = b.scalars.get(name, 0)
        if before == after:
            continue
        differences += 1
        scalar_moves.append((abs(_relative(before, after)), name, before, after))
    scalar_moves.sort(key=lambda move: (-move[0], move[1]))

    hist_moves = []
    for name in sorted(set(a.histograms) | set(b.histograms)):
        ha = a.histograms.get(name, ParsedHistogram(name))
        hb = b.histograms.get(name, ParsedHistogram(name))
        if ha.counts == hb.counts and ha.sum == hb.sum and ha.count == hb.count:
            continue
        differences += 1
        hist_moves.append((abs(_relative(ha.mean, hb.mean)), name, ha, hb))
    hist_moves.sort(key=lambda move: (-move[0], move[1]))

    if hist_moves:
        rel, name, ha, hb = hist_moves[0]
        lines.append(
            "largest histogram mover: %s (mean %s: %.0f -> %.0f)"
            % (name, _fmt_pct(_relative(ha.mean, hb.mean)), ha.mean, hb.mean)
        )
        lines.append("")
        lines.append("histograms (%d moved):" % len(hist_moves))
        for rel, name, ha, hb in hist_moves[:top]:
            lines.append(
                "  %-44s count %s -> %s  mean %.0f -> %.0f (%s)"
                % (name, int(ha.count), int(hb.count), ha.mean, hb.mean,
                   _fmt_pct(_relative(ha.mean, hb.mean)))
            )
            lines.append(
                "  %-44s p50 %s -> %s  p99 %s -> %s"
                % ("", ha.percentile(50), hb.percentile(50),
                   ha.percentile(99), hb.percentile(99))
            )
        if len(hist_moves) > top:
            lines.append("  ... %d more" % (len(hist_moves) - top))
        lines.append("")

    if scalar_moves:
        lines.append("scalars (%d moved):" % len(scalar_moves))
        for rel, name, before, after in scalar_moves[:top]:
            lines.append(
                "  %-44s %s -> %s (%s)"
                % (name, before, after, _fmt_pct(_relative(before, after)))
            )
        if len(scalar_moves) > top:
            lines.append("  ... %d more" % (len(scalar_moves) - top))

    if not differences:
        lines.append("exports are identical")
    return lines, differences


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff or merge Prometheus exports from repro runs.",
    )
    parser.add_argument("files", nargs="+", metavar="EXPORT.prom")
    parser.add_argument(
        "--merge", action="store_true",
        help="fold all exports into one and print the merged exposition",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many movers to list per section (default 10)",
    )
    parser.add_argument(
        "--only", metavar="PREFIX", default=None,
        help="restrict to series whose name starts with PREFIX "
             "(namespace-insensitive: 'lifecycle' matches "
             "repro_stat_lifecycle_*) — e.g. --only lifecycle names "
             "cross-run rejoin-latency drift, --only dist_canonical "
             "isolates the canonicalization pipeline; known families: "
             + ", ".join(KNOWN_PREFIXES),
    )
    options = parser.parse_args(argv)
    try:
        snapshots = [Snapshot.load(path) for path in options.files]
        if options.only:
            snapshots = [restrict(snap, options.only) for snap in snapshots]
        if options.merge:
            merged = snapshots[0]
            for snap in snapshots[1:]:
                merged.merge(snap)
            sys.stdout.write(merged.to_prometheus())
            return 0
        if len(options.files) != 2:
            parser.error("diff mode takes exactly two exports")
        lines, differences = diff_report(
            snapshots[0], snapshots[1], top=options.top
        )
    except (MetricsDiffError, OSError) as exc:
        sys.stderr.write("error: %s\n" % exc)
        return 2
    sys.stdout.write("--- %s\n+++ %s\n" % (options.files[0], options.files[1]))
    sys.stdout.write("\n".join(lines) + "\n")
    return 1 if differences else 0


if __name__ == "__main__":
    sys.exit(main())
