"""File exporters: JSON-lines traces, postmortems, Prometheus text."""

from __future__ import annotations

import json


def write_trace_jsonl(path: str, tracer) -> int:
    """Write the tracer's buffered events as JSON lines; returns the
    number of events written."""
    with open(path, "w") as handle:
        for event in tracer.events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True,
                                    default=repr))
            handle.write("\n")
    return len(tracer.events)


def write_postmortem(path: str, postmortem) -> None:
    with open(path, "w") as handle:
        json.dump(postmortem.to_json(), handle, indent=2, sort_keys=True,
                  default=repr)
        handle.write("\n")


def write_prometheus(path: str, registry, prefix: str = "repro_") -> None:
    with open(path, "w") as handle:
        handle.write(registry.to_prometheus(prefix=prefix))
