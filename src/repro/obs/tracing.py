"""Virtual-time span tracing.

The :class:`Tracer` is an event sink in the sense of
``Simulator(trace=...)``: it has an ``emit(event)`` method taking
:class:`~repro.sim.TraceEvent` objects. Choke points call
:meth:`Tracer.begin`/:meth:`Span.finish` (or the ``span`` context
manager) around their instrumented intervals; when tracing is disabled
every call is a no-op returning shared null objects, so the disabled
path costs one attribute check and nothing else.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim import TraceEvent


class Span:
    """An open interval on the virtual clock; ``finish`` emits it."""

    __slots__ = ("tracer", "component", "name", "start_ns", "attrs", "_done")

    def __init__(self, tracer: "Tracer", component: str, name: str,
                 start_ns: int, attrs: dict):
        self.tracer = tracer
        self.component = component
        self.name = name
        self.start_ns = start_ns
        self.attrs = attrs
        self._done = False

    def finish(self, **attrs) -> None:
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        now = self.tracer.sim.now
        self.tracer.emit(TraceEvent(
            now, "span", self.component, self.name,
            dur_ns=now - self.start_ns, attrs=self.attrs,
        ))

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.finish()
        return False


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def finish(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceEvent` records in a bounded buffer.

    Attributes:
        enabled: gate checked by every instrumented choke point; when
            false, ``begin`` returns ``None`` and ``span`` returns a
            shared null span.
        events: the recorded events, oldest first.
        dropped: events discarded once ``max_events`` was reached.
    """

    def __init__(self, sim, enabled: bool = True, max_events: int = 100_000):
        self.sim = sim
        self.enabled = enabled
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # -- sink protocol --------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- span API -------------------------------------------------------
    def begin(self, component: str, name: str, **attrs) -> Optional[Span]:
        """Open a span now; returns ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        return Span(self, component, name, self.sim.now, attrs)

    def span(self, component: str, name: str, **attrs):
        """Context-manager form of :meth:`begin`; always usable in a
        ``with`` statement regardless of ``enabled``."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, component, name, self.sim.now, attrs)

    def instant(self, component: str, name: str, **attrs) -> None:
        if not self.enabled:
            return
        self.emit(TraceEvent(self.sim.now, "instant", component, name,
                             attrs=attrs))
