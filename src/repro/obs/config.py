"""Observability configuration (see DESIGN.md §9).

``ObsConfig`` is frozen so it can key ``lru_cache``'d bench helpers and
ride inside :class:`~repro.core.remon.ReMonConfig` without aliasing
runtime state. The default configuration is *metrics-only*: counters,
gauges, and histograms are host-side bookkeeping with zero virtual-time
cost, so a default-configured run is byte-identical in virtual wall time
to one with no obs at all. Spans and the flight recorder each charge a
small deterministic virtual cost at the choke points they instrument
(``CostModel.obs_span_ns`` / ``obs_event_ns``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for the repro.obs subsystem.

    Attributes:
        spans: emit structured span/instant trace events from the hot
            choke points (kernel dispatch, rendezvous, RB ops, IK-B
            routing, dist transport). Off by default — zero cost.
        flight_recorder: keep a bounded per-replica ring of the last
            ``ring_size`` syscall/rendezvous events and dump a
            postmortem on divergence or quarantine.
        ring_size: events retained per replica by the flight recorder.
        max_events: bound on the tracer's in-memory event buffer;
            further events are counted in ``Tracer.dropped``.
        trace_path: if set, finalize writes the trace as JSON lines.
        prometheus_path: if set, finalize writes the registry in
            Prometheus text exposition format.
    """

    spans: bool = False
    flight_recorder: bool = False
    ring_size: int = 64
    max_events: int = 100_000
    trace_path: Optional[str] = None
    prometheus_path: Optional[str] = None
