"""The per-run observability hub.

One :class:`Obs` instance is owned by each ``ReMon``/``DistMvee`` and
threaded to every component that reports: it bundles the metrics
registry (always on, host-side only), the span tracer, and the optional
flight recorder, and knows the deterministic virtual cost the enabled
instruments add at each instrumented choke point.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.config import ObsConfig
from repro.obs.export import (
    write_postmortem,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, Postmortem
from repro.obs.tracing import Tracer


class Obs:
    """Registry + tracer + flight recorder for one MVEE run."""

    def __init__(self, config: ObsConfig, sim):
        self.config = config
        self.sim = sim
        self.registry = MetricsRegistry()
        self.tracer = Tracer(sim, enabled=config.spans,
                             max_events=config.max_events)
        self.recorder = (FlightRecorder(config.ring_size)
                         if config.flight_recorder else None)
        # Virtual-time charges, set by bind_costs; all zero while the
        # corresponding instrument is off, so a metrics-only run's wall
        # time is byte-identical to an obs-free one.
        self.span_cost_ns = 0
        self.event_cost_ns = 0
        self.dispatch_cost_ns = 0

    @property
    def active(self) -> bool:
        """True when any virtual-cost-bearing instrument is enabled."""
        return self.tracer.enabled or self.recorder is not None

    @classmethod
    def create(cls, config: Optional[ObsConfig], sim) -> "Obs":
        return cls(config if config is not None else ObsConfig(), sim)

    def bind_costs(self, costs) -> None:
        self.span_cost_ns = costs.obs_span_ns if self.tracer.enabled else 0
        self.event_cost_ns = (costs.obs_event_ns
                              if self.recorder is not None else 0)
        self.dispatch_cost_ns = self.span_cost_ns + self.event_cost_ns

    # -- postmortems ----------------------------------------------------
    def emit_postmortem(self, reason: str, report,
                        attribution: Optional[dict] = None,
                        backoff: Optional[dict] = None,
                        ) -> Optional[Postmortem]:
        """Snapshot the flight recorder into a postmortem; ``None`` when
        the recorder is disabled."""
        if self.recorder is None:
            return None
        return Postmortem(
            reason, report, self.recorder.tails(),
            attribution=attribution, backoff=backoff,
            recorder_stats={
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
                "ring_size": self.recorder.ring_size,
            },
        )

    # -- finalize-time export -------------------------------------------
    def export_files(self, postmortems=()) -> None:
        """Honour ``trace_path``/``prometheus_path`` if configured."""
        if self.config.trace_path:
            write_trace_jsonl(self.config.trace_path, self.tracer)
        if self.config.prometheus_path:
            write_prometheus(self.config.prometheus_path, self.registry)
        if self.config.trace_path and postmortems:
            write_postmortem(self.config.trace_path + ".postmortem.json",
                             postmortems[0])
