"""repro.obs — observability for the MVEE reproduction (DESIGN.md §9).

Three instruments behind one hub:

* :class:`MetricsRegistry` — counters, gauges, mergeable fixed-bucket
  histograms on virtual nanoseconds, plus a compatibility adapter that
  serves the legacy ``RunResult.stats`` mapping from ingested component
  stats dicts.
* :class:`Tracer` — structured span/instant tracing on ``Simulator``
  virtual time, zero-cost when disabled.
* :class:`FlightRecorder` — bounded per-replica rings of recent
  syscall/rendezvous events, dumped as a :class:`Postmortem` on
  divergence or quarantine.
"""

from repro.obs.config import ObsConfig
from repro.obs.export import (
    write_postmortem,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.hub import Obs
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, Postmortem
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "ObsConfig",
    "Postmortem",
    "Span",
    "Tracer",
    "write_postmortem",
    "write_prometheus",
    "write_trace_jsonl",
]
