"""repro.obs — observability for the MVEE reproduction (DESIGN.md §9).

Three instruments behind one hub:

* :class:`MetricsRegistry` — counters, gauges, mergeable fixed-bucket
  histograms on virtual nanoseconds, plus a compatibility adapter that
  serves the legacy ``RunResult.stats`` mapping from ingested component
  stats dicts.
* :class:`Tracer` — structured span/instant tracing on ``Simulator``
  virtual time, zero-cost when disabled.
* :class:`FlightRecorder` — bounded per-replica rings of recent
  syscall/rendezvous events, dumped as a :class:`Postmortem` on
  divergence or quarantine.

Prometheus exports round-trip: ``python -m repro.obs.diff`` parses two
``write_prometheus`` files back into mergeable snapshots and reports
which choke-point histogram moved between the runs.
"""

from repro.obs.config import ObsConfig
from repro.obs.export import (
    write_postmortem,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.hub import Obs
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, Postmortem
from repro.obs.tracing import Span, Tracer

#: repro.obs.diff exports, resolved lazily so ``python -m repro.obs.diff``
#: does not import the module twice (once via the package, once as
#: ``__main__``) and trip runpy's double-import warning.
_DIFF_EXPORTS = ("MetricsDiffError", "ParsedHistogram", "Snapshot", "diff_report")


def __getattr__(name):
    if name in _DIFF_EXPORTS:
        from repro.obs import diff

        return getattr(diff, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsDiffError",
    "MetricsRegistry",
    "Obs",
    "ObsConfig",
    "ParsedHistogram",
    "Postmortem",
    "Snapshot",
    "Span",
    "Tracer",
    "diff_report",
    "write_postmortem",
    "write_prometheus",
    "write_trace_jsonl",
]
