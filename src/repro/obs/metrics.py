"""Metrics primitives: counters, gauges, mergeable fixed-bucket
histograms, and the registry that also serves the legacy ``stats`` view.

Histograms are keyed on virtual nanoseconds and use a fixed log-spaced
bucket layout (three buckets per decade from 100 ns to 10 s), so two
histograms from different runs — or different shards of the same run —
merge by plain bucket-count addition. Percentiles are read from the
bucket upper bounds, clamped into ``[min, max]`` of the observed values,
which keeps them monotone in ``p``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from math import ceil
from typing import Dict, Iterable, List, Optional, Tuple

#: Log-spaced bucket upper bounds, 3/decade: 100 ns ... 10 s.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(
    int(round(10 ** (2 + i / 3))) for i in range(25)
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram over virtual nanoseconds.

    ``counts`` has ``len(bounds) + 1`` slots; the last one is the
    overflow bucket for observations above the largest bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Optional[Iterable[int]] = None):
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(bounds) if bounds else DEFAULT_BOUNDS
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, p: float) -> Optional[int]:
        """The ``p``-th percentile (``0 < p <= 100``), as the upper bound
        of the bucket containing that rank, clamped to [min, max]."""
        if self.count == 0:
            return None
        rank = max(1, ceil(self.count * p / 100.0))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return self.max
                return max(self.min, min(self.bounds[index], self.max))
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram in place."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket layouts"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram holding ``self + other``."""
        out = Histogram(self.name, self.bounds)
        out.merge(self)
        out.merge(other)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.count == other.count
            and self.sum == other.sum
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self):
        return "Histogram(%s, n=%d, p50=%r, p99=%r)" % (
            self.name, self.count, self.percentile(50), self.percentile(99),
        )


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


class MetricsRegistry:
    """Names -> metric instances, plus the legacy-stats compatibility
    adapter.

    Components keep their plain ``stats`` dicts; :meth:`ingest` registers
    a *live reference* to each one under a prefix, and :meth:`stats_view`
    rebuilds the flat merged mapping on demand — byte-identical to the
    old hand-prefixed assembly in ``ReMon.finalize``. Derived scalars
    that never lived in a component dict go in via :meth:`expose`.
    Native metrics (counters/gauges/histograms) are *not* part of the
    stats view; they surface through :meth:`to_prometheus`.
    """

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        # (prefix, source-key) -> live stats mapping, insertion-ordered.
        self._ingested: Dict[Tuple[str, object], Dict] = {}
        self._exposed: Dict[str, object] = {}

    # -- native metrics -------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Optional[Iterable[int]] = None) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, bounds)
        return metric

    # -- legacy stats adapter -------------------------------------------
    def ingest(self, prefix: str, mapping: Dict, source=None) -> None:
        """Register a live component ``stats`` dict under ``prefix``.

        Idempotent for the same ``(prefix, source)`` pair, so finalize
        may run more than once without duplicating anything.
        """
        self._ingested[(prefix, source if source is not None else id(mapping))] \
            = mapping

    def expose(self, key: str, value) -> None:
        """Publish one derived scalar into the stats view (overwrites)."""
        self._exposed[key] = value

    def stats_view(self) -> Dict:
        """The flat merged stats mapping, rebuilt from live sources."""
        out: Dict = {}
        for (prefix, _source), mapping in self._ingested.items():
            for key, value in mapping.items():
                out[prefix + key] = value
        out.update(self._exposed)
        return out

    # -- export ---------------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Render every metric (and the stats view, as gauges) in the
        Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = self.counters[name]
            full = _prom_name(prefix + name)
            lines.append("# TYPE %s counter" % full)
            lines.append("%s %d" % (full, metric.value))
        for name in sorted(self.gauges):
            metric = self.gauges[name]
            full = _prom_name(prefix + name)
            lines.append("# TYPE %s gauge" % full)
            lines.append("%s %s" % (full, metric.value))
        for name in sorted(self.histograms):
            metric = self.histograms[name]
            full = _prom_name(prefix + name)
            lines.append("# TYPE %s histogram" % full)
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, metric.counts):
                cumulative += bucket_count
                lines.append('%s_bucket{le="%d"} %d' % (full, bound, cumulative))
            cumulative += metric.counts[-1]
            lines.append('%s_bucket{le="+Inf"} %d' % (full, cumulative))
            lines.append("%s_sum %d" % (full, metric.sum))
            lines.append("%s_count %d" % (full, metric.count))
        stats = self.stats_view()
        for key in sorted(stats):
            value = stats[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            full = _prom_name(prefix + "stat_" + key)
            lines.append("# TYPE %s gauge" % full)
            lines.append("%s %s" % (full, value))
        return "\n".join(lines) + "\n"
