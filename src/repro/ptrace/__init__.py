"""A ptrace-like tracing facility over the simulated kernel."""

from repro.ptrace.api import Stop, Tracer

__all__ = ["Stop", "Tracer"]
