"""The tracing API used by cross-process monitors.

This mirrors the parts of Linux ptrace that MVEE monitors live on:

* **syscall stops** — a traced thread stops at syscall entry and exit;
  the tracer inspects/rewrites arguments and results, may *skip* the
  call entirely (GHUMVEE does this for slave replicas' I/O calls), and
  resumes the thread;
* **peek/poke** — reading and writing tracee memory (the simulated
  equivalent of ``process_vm_readv`` / ``PTRACE_POKEDATA``);
* **signal interception** — asynchronous signals destined for a tracee
  are reported to the tracer instead of being delivered, so the monitor
  can defer them to a synchronization point (paper §2.2);
* **exit notifications**.

Timing: a stop parks the tracee until the tracer fires its resume event,
so every monitor decision naturally costs the tracee the monitor's
processing time — the context-switch overheads the paper's evaluation
revolves around are charged by the monitor via its cost model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import MonitorError
from repro.sim import Event, WaitEvent


class Stop:
    """One ptrace stop reported to the tracer."""

    __slots__ = ("kind", "thread", "req", "result", "final_result", "signo", "sender_pid")

    def __init__(self, kind: str, thread, req=None, result=None, signo=0, sender_pid=0):
        self.kind = kind  # "syscall-entry" | "syscall-exit" | "signal" | "exit"
        self.thread = thread
        self.req = req
        self.result = result
        self.final_result = result
        self.signo = signo
        self.sender_pid = sender_pid

    def __repr__(self):
        detail = self.req.name if self.req is not None else self.signo
        return "Stop(%s, %s, %r)" % (self.kind, self.thread.name, detail)


class Tracer:
    """A monitor's handle on a set of traced processes.

    The monitor installs ``stop_handler``, a plain callable invoked
    synchronously whenever a tracee stops. Handlers typically record
    state and either resume immediately or leave the tracee parked and
    resume it later from a monitor coroutine (charging monitor time).
    """

    def __init__(self, kernel, name: str = "tracer"):
        self.kernel = kernel
        self.name = name
        self.stop_handler: Optional[Callable[[Stop], None]] = None
        self.signal_handler: Optional[Callable[[Stop], None]] = None
        self.exit_handler: Optional[Callable[[Stop], None]] = None
        self._syscall_tracing = True
        self._signal_interception = True
        self.traced_processes = []
        self.stops_delivered = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, process) -> None:
        """PTRACE_ATTACH (plus TRACESYSGOOD): trace every current and
        future thread of ``process``."""
        process.tracer = self
        self.traced_processes.append(process)
        for thread in process.threads.values():
            thread.tracer = self

    def detach(self, process) -> None:
        process.tracer = None
        if process in self.traced_processes:
            self.traced_processes.remove(process)
        for thread in process.threads.values():
            thread.tracer = None

    def set_syscall_tracing(self, enabled: bool) -> None:
        self._syscall_tracing = enabled

    def set_signal_interception(self, enabled: bool) -> None:
        self._signal_interception = enabled

    # ------------------------------------------------------------------
    # Kernel-facing interface (duck-typed from repro.kernel.kernel)
    # ------------------------------------------------------------------
    def traces_syscalls(self, thread) -> bool:
        return self._syscall_tracing

    def intercepts_signal(self, thread, signo: int) -> bool:
        return self._signal_interception

    def report_syscall_entry(self, thread, req):
        stop = Stop("syscall-entry", thread, req=req)
        yield from self._deliver_and_park(stop)
        return None

    def report_syscall_exit(self, thread, req, result):
        stop = Stop("syscall-exit", thread, req=req, result=result)
        yield from self._deliver_and_park(stop)
        return stop.final_result

    def report_signal(self, thread, signo: int, sender_pid: int = 0) -> None:
        """A signal for a tracee was intercepted (tracer decides its fate)."""
        stop = Stop("signal", thread, signo=signo, sender_pid=sender_pid)
        self.stops_delivered += 1
        if self.signal_handler is not None:
            self.signal_handler(stop)
        # Without a handler the signal is dropped, mirroring a tracer
        # that never re-injects.

    def report_fatal_signal(self, thread, signo: int) -> None:
        stop = Stop("exit", thread, signo=signo)
        if self.exit_handler is not None:
            self.exit_handler(stop)

    def report_thread_gone(self, thread, code: int, signo: int) -> None:
        stop = Stop("exit", thread, result=code, signo=signo)
        if self.exit_handler is not None:
            self.exit_handler(stop)

    # ------------------------------------------------------------------
    # Tracer-side controls
    # ------------------------------------------------------------------
    def resume(self, thread, final_result=None) -> None:
        """PTRACE_SYSCALL: let a parked tracee continue. For a syscall-
        exit stop, ``final_result`` (if not None) replaces the result the
        tracee will observe."""
        event = thread.ptrace_resume_event
        if event is None:
            raise MonitorError("resume of a thread that is not stopped: %s" % thread.name)
        stop = thread.ptrace_current_stop
        if final_result is not None and stop is not None:
            stop.final_result = final_result
        thread.ptrace_resume_event = None
        thread.ptrace_current_stop = None
        self.kernel.sim.fire(event)

    def skip_call(self, thread, forced_result: int) -> None:
        """At a syscall-entry stop: do not run the call; make the tracee
        observe ``forced_result`` instead. This is how a CP monitor
        aborts slave I/O calls (the master-calls model, paper §2.1)."""
        thread.ptrace_skip_call = True
        thread.ptrace_forced_result = forced_result

    def rewrite_args(self, thread, req) -> None:
        """At a syscall-entry stop: replace the request the kernel runs."""
        thread.current_syscall = req

    def peek(self, process, addr: int, length: int) -> bytes:
        """Read tracee memory (process_vm_readv equivalent)."""
        return process.space.read(addr, length, check_prot=False)

    def poke(self, process, addr: int, data: bytes) -> None:
        """Write tracee memory (process_vm_writev equivalent)."""
        process.space.write(addr, data, check_prot=False)

    def inject_signal(self, thread, signo: int, sender_pid: int = 0) -> None:
        """Deliver a previously intercepted signal to the tracee now."""
        from repro.kernel.process import PendingSignal

        self.kernel.queue_signal(thread, PendingSignal(signo, sender_pid))

    def interrupt_call(self, thread) -> bool:
        """Abort a tracee's in-progress blocking operation (the monitor-
        initiated EINTR GHUMVEE uses in §3.8)."""
        return thread.interrupt(self.kernel.sim)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver_and_park(self, stop: Stop):
        thread = stop.thread
        event = Event("resume:%s" % thread.name)
        thread.ptrace_stopped = True
        thread.ptrace_resume_event = event
        thread.ptrace_current_stop = stop
        self.stops_delivered += 1
        if self.stop_handler is None:
            raise MonitorError("tracer %s has no stop handler" % self.name)
        self.stop_handler(stop)
        yield WaitEvent(event)
        thread.ptrace_stopped = False
