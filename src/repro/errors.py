"""Top-level exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """An internal invariant of the discrete-event simulator was violated."""


class KernelError(ReproError):
    """An internal invariant of the simulated kernel was violated."""


class GuestFault(ReproError):
    """A guest program performed an illegal operation (e.g. a bad memory
    access) that is not representable as a signal.

    Most guest faults are delivered as simulated signals (SIGSEGV and
    friends); this exception is reserved for situations where the guest
    runtime itself is broken, such as yielding an unknown effect.
    """


class MonitorError(ReproError):
    """The MVEE monitor detected an unrecoverable internal problem.

    This is distinct from a *divergence*, which is an expected security
    event and is reported through :class:`repro.core.ghumvee.Divergence`.
    """


class DivergenceError(ReproError):
    """Replica behaviour diverged and the MVEE shut the replicas down.

    Attributes:
        report: a :class:`repro.core.events.DivergenceReport` describing
            which replicas disagreed and on what.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class PolicyError(ReproError):
    """A monitoring relaxation policy was configured inconsistently."""


class WireError(ReproError):
    """A cross-node wire-format frame failed validation (bad magic,
    version, length, or checksum). The distributed transport treats this
    as a transmission fault, never as silently-accepted data."""


class FaultConfigError(ReproError):
    """A fault-injection plan was configured inconsistently (e.g. a
    crash fault with both a virtual deadline and a syscall count)."""


class SecurityViolation(ReproError):
    """An attack scenario performed an action the design forbids.

    Raised by the hardened components (IK-B, IP-MON) when an attacker
    bypasses a check that the real system enforces in hardware or in the
    kernel; tests assert that these are raised where the paper claims the
    design holds.
    """
