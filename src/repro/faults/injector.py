"""The fault injector: deterministic fault delivery into a live MVEE.

Fault triggers are expressed either in virtual time (``at_ns``) or in
per-replica syscall counts (``after_syscalls``), both of which are
deterministic in the discrete-event simulation. The injector keeps all
runtime state (remaining counts, fired flags) internal, so a single
:class:`FaultPlan` can be replayed across runs without bleed-through.

Hook points (see ``Kernel.syscall_path`` / ``Kernel.invoke`` /
``InKernelBroker._forward_to_ipmon``):

* **crash** — the replica process is terminated (SIGKILL/SIGSEGV) at
  dispatch of its Nth syscall or at a virtual deadline;
* **stall** — the replica sleeps ``duration_ns`` inside dispatch,
  without publishing records or reaching its rendezvous;
* **error** — a raw handler invocation returns ``-errno`` (EIO, ENOMEM,
  EINTR, ...) instead of executing. Injected at :meth:`Kernel.invoke`,
  so a master-call error is replicated consistently to the slaves;
* **token loss** — IK-B "forgets" an authorization token right after
  issuing it, so IP-MON's restart fails verification;
* **RB corruption** — a byte of the next unconsumed record's argument
  blob is flipped, which a slave's PRECALL comparison must catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultConfigError
from repro.kernel import constants as C

_LCG_MULT = 6364136223846793005
_LCG_ADD = 1442695040888963407
_MASK = (1 << 64) - 1


def _lcg(state: int) -> int:
    return (state * _LCG_MULT + _LCG_ADD) & _MASK


@dataclass
class CrashFault:
    """Terminate one replica with a signal (SIGKILL/SIGSEGV)."""

    replica: int
    at_ns: Optional[int] = None
    after_syscalls: Optional[int] = None
    signo: int = C.SIGKILL

    def __post_init__(self):
        if (self.at_ns is None) == (self.after_syscalls is None):
            raise FaultConfigError(
                "CrashFault needs exactly one of at_ns / after_syscalls"
            )


@dataclass
class ShardOwnerCrashFault:
    """Terminate whichever replica owns a rendezvous shard *at fire
    time* (distributed clusters only).

    Unlike :class:`CrashFault` the victim is not fixed in the plan: it
    is resolved against ``mvee.shard_owners()`` when the deadline
    arrives, so the fault always lands on a node that actually hosts
    per-shard monitor state — the scenario the epoch/handoff protocol
    exists for. With ``prefer_non_leader`` the first non-leader owner
    is chosen (isolating shard handoff from leader promotion); if the
    leader is the only owner it is crashed anyway.
    """

    at_ns: int
    signo: int = C.SIGKILL
    prefer_non_leader: bool = True


@dataclass
class StallFault:
    """Freeze one replica for ``duration_ns`` inside syscall dispatch."""

    replica: int
    duration_ns: int
    at_ns: Optional[int] = None
    after_syscalls: Optional[int] = None

    def __post_init__(self):
        if (self.at_ns is None) == (self.after_syscalls is None):
            raise FaultConfigError(
                "StallFault needs exactly one of at_ns / after_syscalls"
            )


@dataclass
class SyscallErrorFault:
    """Force ``-errno`` from the next matching raw handler invocations."""

    replica: int
    syscall: str
    errno: int
    count: int = 1
    skip_first: int = 0  # matching invocations to let through first


@dataclass
class TokenLossFault:
    """Drop IK-B authorization tokens issued to one replica."""

    replica: int
    count: int = 1
    skip_first: int = 0  # tokens to issue normally first


@dataclass
class RBCorruptionFault:
    """Flip a byte in the args blob of a pending RB record."""

    at_ns: int
    lane_vtid: Optional[int] = None  # None: first lane with a pending record
    flip_mask: int = 0xFF


@dataclass
class LinkDegradeFault:
    """Degrade one *directed* inter-node link for a window of virtual
    time (distributed clusters only): raise its loss/dup/reorder
    probabilities — and optionally its latency — at ``at_ns``, then
    restore the link's previous parameters ``duration_ns`` later.

    ``src``/``dst`` are node indices. The degradation is directed
    (src -> dst traffic only), matching the granularity the per-link
    circuit breakers monitor at; degrade both directions with two
    faults. Attaching a plan containing one of these arms the reliable
    transport from the start of the run.
    """

    at_ns: int
    src: int
    dst: int
    duration_ns: int
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    latency_ns: Optional[int] = None

    def __post_init__(self):
        if self.duration_ns <= 0:
            raise FaultConfigError("LinkDegradeFault needs duration_ns > 0")
        if self.src == self.dst:
            raise FaultConfigError("LinkDegradeFault needs src != dst")
        for name in ("loss_prob", "dup_prob", "reorder_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    "LinkDegradeFault %s must be in [0, 1], got %r"
                    % (name, value)
                )


@dataclass
class NodeRejoinFault:
    """Crash one replica at ``at_ns`` *and* force the lifecycle manager
    to replay-readmit it, even when ``LifecycleConfig.rejoin`` is off
    (distributed clusters with ``DistConfig.lifecycle`` armed only).

    Equivalent to a timed :class:`CrashFault` plus a one-shot rejoin
    grant, so recovery sweeps can price re-admission without globally
    enabling auto-rejoin for every crash in the plan.
    """

    replica: int
    at_ns: int
    signo: int = C.SIGKILL

    def __post_init__(self):
        if self.at_ns <= 0:
            raise FaultConfigError("NodeRejoinFault needs at_ns > 0")


@dataclass
class FaultPlan:
    """An ordered collection of faults, optionally generated from a seed."""

    faults: List = field(default_factory=list)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self):
        return len(self.faults)

    @classmethod
    def random_crashes(
        cls,
        seed: int,
        replicas: int,
        duration_ns: int,
        crash_rate_hz: float,
        include_master: bool = True,
    ) -> "FaultPlan":
        """A deterministic plan of crash faults at the given rate.

        The crash count is ``rate * duration`` rounded to the nearest
        integer; times and victim replicas come from the same LCG the
        simulated kernel uses, so a (seed, rate, replicas) triple always
        produces the identical plan.
        """
        if replicas < 2:
            raise FaultConfigError("random_crashes needs at least 2 replicas")
        state = (seed or 1) & _MASK
        count = int(round(crash_rate_hz * duration_ns / 1e9))
        faults = []
        for _ in range(count):
            state = _lcg(state)
            at_ns = 1 + state % max(1, duration_ns)
            state = _lcg(state)
            if include_master:
                victim = state % replicas
            else:
                victim = 1 + state % (replicas - 1)
            faults.append(CrashFault(replica=victim, at_ns=at_ns))
        faults.sort(key=lambda f: (f.at_ns, f.replica))
        return cls(faults)


class FaultInjector:
    """Delivers one :class:`FaultPlan` into a kernel/MVEE pair.

    Use::

        kernel = Kernel()
        FaultInjector(plan).install(kernel)
        mvee = ReMon(kernel, program, config)   # binds itself
        result = mvee.run()
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self.kernel = None
        self.mvee = None
        self.obs = None
        self.stats: Dict[str, int] = {
            "crashes": 0,
            "stalls": 0,
            "errors": 0,
            "tokens_lost": 0,
            "rb_corruptions": 0,
            "link_degrades": 0,
            "skipped": 0,  # faults whose target was already gone
        }
        # Per-replica dispatch counts (drives after_syscalls triggers).
        self._dispatches: Dict[int, int] = {}
        # Count-triggered crash/stall faults per replica, time-triggered
        # stalls pending consumption at the replica's next dispatch.
        self._count_faults: Dict[int, List] = {}
        self._pending_stalls: Dict[int, List[int]] = {}
        # Mutable runtime state for error/token faults: [fault, skip, left].
        self._error_state: List[List] = []
        self._token_state: List[List] = []
        self._timed: List = []
        for fault in self.plan:
            if isinstance(fault, (CrashFault, StallFault)):
                if fault.at_ns is not None:
                    self._timed.append(fault)
                else:
                    self._count_faults.setdefault(fault.replica, []).append(fault)
            elif isinstance(fault, ShardOwnerCrashFault):
                self._timed.append(fault)
            elif isinstance(fault, SyscallErrorFault):
                self._error_state.append([fault, fault.skip_first, fault.count])
            elif isinstance(fault, TokenLossFault):
                self._token_state.append([fault, fault.skip_first, fault.count])
            elif isinstance(fault, RBCorruptionFault):
                self._timed.append(fault)
            elif isinstance(fault, LinkDegradeFault):
                self._timed.append(fault)
            elif isinstance(fault, NodeRejoinFault):
                self._timed.append(fault)
            else:
                raise FaultConfigError("unknown fault type: %r" % (fault,))

    @property
    def total_injected(self) -> int:
        return (
            self.stats["crashes"]
            + self.stats["stalls"]
            + self.stats["errors"]
            + self.stats["tokens_lost"]
            + self.stats["rb_corruptions"]
            + self.stats["link_degrades"]
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, kernel) -> "FaultInjector":
        self.kernel = kernel
        kernel.fault_injector = self
        now = kernel.sim.now
        for fault in self._timed:
            at = max(now + 1, fault.at_ns)
            if isinstance(fault, RBCorruptionFault):
                kernel.sim.call_at(at, self._fire_rb_corruption, fault, 0)
            elif isinstance(fault, LinkDegradeFault):
                kernel.sim.call_at(at, self._fire_link_degrade, fault)
            elif isinstance(fault, ShardOwnerCrashFault):
                kernel.sim.call_at(at, self._fire_shard_owner_crash, fault)
            elif isinstance(fault, CrashFault):
                kernel.sim.call_at(at, self._fire_crash, fault)
            elif isinstance(fault, NodeRejoinFault):
                kernel.sim.call_at(at, self._fire_node_rejoin, fault)
            else:
                kernel.sim.call_at(at, self._fire_stall, fault)
        return self

    def bind_mvee(self, mvee) -> None:
        """Called by ReMon._build: gives the injector replica/RB access."""
        self.mvee = mvee
        self.obs = getattr(mvee, "obs", None)

    def _obs_fault(self, kind: str, replica: Optional[int] = None) -> None:
        """Mirror one injected fault into the obs registry (and the
        flight recorder ring, so postmortem tails show the injection)."""
        obs = self.obs
        if obs is None:
            return
        obs.registry.counter("faults_injected_total").inc()
        obs.registry.counter("faults_" + kind).inc()
        if obs.recorder is not None and replica is not None:
            now = self.kernel.sim.now if self.kernel is not None else 0
            obs.recorder.record(replica, now, "fault", kind)

    def _replica_process(self, index: int):
        if self.mvee is not None:
            processes = self.mvee.group.processes
            if 0 <= index < len(processes):
                return processes[index]
            return None
        if self.kernel is not None:
            for process in self.kernel.processes.values():
                if getattr(process, "replica_index", None) == index:
                    return process
        return None

    # ------------------------------------------------------------------
    # Timed faults
    # ------------------------------------------------------------------
    def _fire_crash(self, fault: CrashFault) -> None:
        process = self._replica_process(fault.replica)
        if process is None or process.exited:
            self.stats["skipped"] += 1
            return
        self.stats["crashes"] += 1
        self._obs_fault("crash", fault.replica)
        self.kernel.terminate_process(process, 128 + fault.signo, signo=fault.signo)

    def _fire_node_rejoin(self, fault: NodeRejoinFault) -> None:
        process = self._replica_process(fault.replica)
        if process is None or process.exited:
            self.stats["skipped"] += 1
            return
        lifecycle = getattr(self.mvee, "lifecycle", None)
        if lifecycle is not None:
            lifecycle.force_rejoin(fault.replica)
        self.stats["crashes"] += 1
        self._obs_fault("crash", fault.replica)
        self.kernel.terminate_process(process, 128 + fault.signo, signo=fault.signo)

    def _fire_shard_owner_crash(self, fault: ShardOwnerCrashFault) -> None:
        mvee = self.mvee
        owners = getattr(mvee, "shard_owners", None)
        if owners is None:  # non-distributed MVEE: no shards to target
            self.stats["skipped"] += 1
            return
        owners = owners()
        victim = owners[0]
        if fault.prefer_non_leader:
            leader = mvee.leader_index
            for owner in owners:
                if owner != leader:
                    victim = owner
                    break
        process = self._replica_process(victim)
        if process is None or process.exited:
            self.stats["skipped"] += 1
            return
        self.stats["crashes"] += 1
        self._obs_fault("crash", victim)
        self.kernel.terminate_process(process, 128 + fault.signo, signo=fault.signo)

    def _fire_link_degrade(self, fault: LinkDegradeFault) -> None:
        mvee = self.mvee
        nodes = getattr(mvee, "nodes", None)
        network = getattr(mvee, "network", None)
        if nodes is None or network is None:
            self.stats["skipped"] += 1  # non-distributed MVEE: no links
            return
        if not (0 <= fault.src < len(nodes) and 0 <= fault.dst < len(nodes)):
            self.stats["skipped"] += 1
            return
        src_ip = nodes[fault.src].host_ip
        dst_ip = nodes[fault.dst].host_ip
        snapshot = network.set_link_directed(
            src_ip, dst_ip,
            latency_ns=fault.latency_ns,
            loss_prob=fault.loss_prob or None,
            dup_prob=fault.dup_prob or None,
            reorder_prob=fault.reorder_prob or None,
        )
        self.kernel.sim.call_at(
            self.kernel.sim.now + fault.duration_ns,
            network.replace_link_directed, src_ip, dst_ip, snapshot,
        )
        self.stats["link_degrades"] += 1
        self._obs_fault("link_degrade", fault.src)

    def _fire_stall(self, fault: StallFault) -> None:
        process = self._replica_process(fault.replica)
        if process is None or process.exited:
            self.stats["skipped"] += 1
            return
        # Consumed (and charged) at the replica's next syscall dispatch.
        self._pending_stalls.setdefault(fault.replica, []).append(fault.duration_ns)

    def _fire_rb_corruption(self, fault: RBCorruptionFault, attempt: int) -> None:
        record = self._find_pending_record(fault)
        if record is None:
            # No record in flight right now; retry briefly, then give up.
            if attempt < 200 and self.mvee is not None and not self.mvee.shutting_down:
                self.kernel.sim.call_at(
                    self.kernel.sim.now + 50_000, self._fire_rb_corruption, fault, attempt + 1
                )
            else:
                self.stats["skipped"] += 1
            return
        from repro.core.rb import HEADER_SIZE

        region = record.region
        length = record.read_args()
        if not length:
            self.stats["skipped"] += 1
            return
        pos = record.offset + HEADER_SIZE
        region.data[pos] = (region.data[pos] ^ fault.flip_mask) & 0xFF
        self.stats["rb_corruptions"] += 1
        self._obs_fault("rb_corruption")

    def _find_pending_record(self, fault: RBCorruptionFault):
        mvee = self.mvee
        if mvee is None or mvee.ipmon is None:
            return None
        lanes = mvee.ipmon.rb.lanes
        candidates = (
            [lanes[fault.lane_vtid]]
            if fault.lane_vtid is not None and fault.lane_vtid in lanes
            else list(lanes.values())
        )
        for lane in candidates:
            for index in sorted(lane.consumed):
                record = lane.next_record_for(index)
                if record is not None and record.state() >= 1 and record.args_len:
                    return record
        return None

    # ------------------------------------------------------------------
    # Dispatch hook (Kernel.syscall_path)
    # ------------------------------------------------------------------
    def on_syscall_entry(self, thread, req) -> Optional[Tuple[str, int]]:
        """Consulted at every syscall dispatch of a replica thread.

        Returns None (no fault), ("crash", signo) after terminating the
        process, or ("stall", duration_ns) — the kernel sleeps and
        re-checks liveness.
        """
        index = getattr(thread.process, "replica_index", None)
        if index is None:
            return None
        count = self._dispatches.get(index, 0) + 1
        self._dispatches[index] = count
        pending = self._pending_stalls.get(index)
        if pending:
            duration = pending.pop(0)
            self.stats["stalls"] += 1
            self._obs_fault("stall", index)
            return ("stall", duration)
        faults = self._count_faults.get(index)
        if not faults:
            return None
        for fault in faults:
            if count >= fault.after_syscalls:
                faults.remove(fault)
                if isinstance(fault, CrashFault):
                    self.stats["crashes"] += 1
                    self._obs_fault("crash", index)
                    self.kernel.terminate_process(
                        thread.process, 128 + fault.signo, signo=fault.signo
                    )
                    return ("crash", fault.signo)
                self.stats["stalls"] += 1
                self._obs_fault("stall", index)
                return ("stall", fault.duration_ns)
        return None

    # ------------------------------------------------------------------
    # Raw-invocation hook (Kernel.invoke)
    # ------------------------------------------------------------------
    def on_invoke(self, thread, req) -> Optional[int]:
        """Returns a positive errno to force ``-errno``, else None."""
        if not self._error_state:
            return None
        index = getattr(thread.process, "replica_index", None)
        if index is None:
            return None
        for state in self._error_state:
            fault, skip, left = state
            if left <= 0 or fault.replica != index or fault.syscall != req.name:
                continue
            if skip > 0:
                state[1] = skip - 1
                continue
            state[2] = left - 1
            self.stats["errors"] += 1
            self._obs_fault("error", index)
            return fault.errno
        return None

    # ------------------------------------------------------------------
    # IK-B hook (token issuance)
    # ------------------------------------------------------------------
    def steal_token(self, thread, req) -> bool:
        """True if the token just issued for this call should be lost."""
        if not self._token_state:
            return False
        index = getattr(thread.process, "replica_index", None)
        if index is None:
            return False
        for state in self._token_state:
            fault, skip, left = state
            if left <= 0 or fault.replica != index:
                continue
            if skip > 0:
                state[1] = skip - 1
                continue
            state[2] = left - 1
            self.stats["tokens_lost"] += 1
            self._obs_fault("token_loss", index)
            return True
        return False
