"""repro.faults: seeded, deterministic fault injection for the MVEE.

The injector hooks the simulated kernel's syscall dispatch (crashes,
stalls), the raw handler invocation path (transient error returns), the
IK-B token issuance path (token loss) and the replication buffer (lane
corruption). Everything is driven by virtual time and per-replica
syscall counts, so a fixed :class:`FaultPlan` produces bit-identical
runs — the property the availability sweep and the degradation tests
rely on.
"""

from repro.faults.injector import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkDegradeFault,
    NodeRejoinFault,
    RBCorruptionFault,
    ShardOwnerCrashFault,
    StallFault,
    SyscallErrorFault,
    TokenLossFault,
)

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradeFault",
    "NodeRejoinFault",
    "RBCorruptionFault",
    "ShardOwnerCrashFault",
    "StallFault",
    "SyscallErrorFault",
    "TokenLossFault",
]
