"""ReMon reproduction: secure & efficient multi-variant execution.

A Python reproduction of Volckaert et al., "Secure and Efficient
Application Monitoring and Replication" (USENIX ATC 2016), built over a
deterministic discrete-event OS simulation. See README.md for the
architecture and DESIGN.md for the substitution argument.

Primary entry points::

    from repro.core import ReMon, ReMonConfig, Level
    from repro.baselines import run_native, Varan
    from repro.guest.program import Program, Compute
    from repro.kernel import Kernel
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
