"""GHUMVEE standalone: the conservative cross-process MVEE baseline.

When used without IP-MON and IK-B, GHUMVEE monitors *every* system call
(paper §5.1's "no IP-MON" configuration, also how GHUMVEE was evaluated
as a standalone MVEE). In this reproduction that is simply ReMon
configured at ``Level.NO_IPMON``.
"""

from __future__ import annotations

from repro.core.policies import Level
from repro.core.remon import ReMonConfig


def ghumvee_standalone_config(replicas: int = 2, **kwargs) -> ReMonConfig:
    """A ReMonConfig for the pure CP-monitor baseline."""
    kwargs.setdefault("level", Level.NO_IPMON)
    return ReMonConfig(replicas=replicas, **kwargs)
