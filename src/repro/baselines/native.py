"""Native (un-monitored) execution: the baseline denominator."""

from __future__ import annotations

from typing import Callable, Optional

from repro.guest import GuestRuntime
from repro.kernel import Kernel


class NativeResult:
    """Outcome of a native run."""

    def __init__(self, kernel, process, wall_time_ns: int):
        self.kernel = kernel
        self.process = process
        self.wall_time_ns = wall_time_ns
        self.exit_code = process.exit_code
        self.syscalls = kernel.syscall_counter
        self.syscalls_by_name = dict(kernel.syscall_counts_by_name)

    def syscall_rate_per_sec(self) -> float:
        if self.wall_time_ns <= 0:
            return 0.0
        return self.syscalls / (self.wall_time_ns / 1e9)

    def __repr__(self):
        return "NativeResult(t=%d ns, %d syscalls, exit=%r)" % (
            self.wall_time_ns,
            self.syscalls,
            self.exit_code,
        )


def run_native(
    program,
    kernel: Optional[Kernel] = None,
    side_tasks: Optional[Callable] = None,
    max_steps: Optional[int] = None,
    until: Optional[int] = None,
) -> NativeResult:
    """Run ``program`` once with no monitoring.

    ``side_tasks(kernel)``, if given, is called before the run to start
    auxiliary simulated processes (benchmark clients, peers).
    """
    kernel = kernel or Kernel()
    program.install_files(kernel)
    process = kernel.create_process(program.name)
    runtime = GuestRuntime(kernel, process, program)
    if side_tasks is not None:
        side_tasks(kernel)
    start = kernel.sim.now
    exit_time = {}
    process.exit_event.add_listener(lambda _v: exit_time.setdefault("t", kernel.sim.now))
    _thread, task = runtime.start()
    kernel.sim.run(max_steps=max_steps, until=until)
    if task.failure is not None:
        raise task.failure
    end = exit_time.get("t", kernel.sim.now)
    return NativeResult(kernel, process, end - start)
