"""Baselines the paper evaluates ReMon against.

* :func:`~repro.baselines.native.run_native` — a single un-monitored
  process (the denominator of every "normalized execution time");
* GHUMVEE standalone — ReMon with IP-MON disabled
  (:func:`~repro.baselines.cp_only.ghumvee_standalone_config`), the
  conservative CP MVEE of Figure 1(a);
* :class:`~repro.baselines.varan.Varan` — a reliability-oriented,
  in-process, loosely-synchronized MVEE in the style of VARAN
  (Figure 1(b)): fast, but the master runs ahead even for sensitive
  calls and nothing enforces lockstep.
"""

from repro.baselines.cp_only import ghumvee_standalone_config
from repro.baselines.native import NativeResult, run_native
from repro.baselines.varan import Varan, VaranConfig

__all__ = [
    "NativeResult",
    "Varan",
    "VaranConfig",
    "ghumvee_standalone_config",
    "run_native",
]
