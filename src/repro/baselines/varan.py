"""A VARAN-style in-process, loosely-synchronized MVEE (paper §6).

VARAN (Hosek & Cadar, ASPLOS'15) rewrites system-call instructions into
trampolines to in-process replication agents. The master executes every
call immediately and logs it into a shared ring buffer; slaves running
*behind* the master consume the log and copy results instead of
executing. There is no lockstep, no ptrace, and no distinction between
sensitive and innocuous calls.

That design is fast — and it is the efficiency bar ReMon aims for — but
as a *security* monitor it has the weaknesses §6 discusses, which the
attack scenarios exercise:

* the master runs ahead even for sensitive calls, so a compromised
  master executes attacker-chosen syscalls before any slave checks them
  (the run-ahead window is the ring-buffer depth);
* the agents are protected only by ASLR (no token/CFI mechanism, no
  hidden buffer pointer);
* only explicit syscall instructions are rewritten, so unaligned
  syscall gadgets bypass the agents entirely (modelled by the
  ``raw_syscall`` attack hook).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.core.comparator import serialize_args
from repro.core.epoll_map import EpollShadowMap
from repro.core.events import DivergenceReport, MveeResult
from repro.core.handlers import build_handler_table
from repro.core.ghumvee import ALLEXEC_NAMES, FD_CREATE_NAMES
from repro.diversity.aslr import make_layouts
from repro.guest.runtime import GuestRuntime
from repro.kernel.specs import SYSCALL_SPECS
from repro.kernel.waitq import WaitQueue, wait_interruptible
from repro.sim import Sleep


class VaranConfig:
    def __init__(
        self,
        replicas: int = 2,
        ring_entries: int = 256,
        check_args: bool = True,
        seed: int = 0,
    ):
        self.replicas = replicas
        #: Ring-buffer depth = the master's maximum run-ahead (in calls).
        self.ring_entries = ring_entries
        #: VARAN tolerates small discrepancies; with check_args False the
        #: slaves only verify the syscall *number*, not the arguments.
        self.check_args = check_args
        self.seed = seed


class RingEvent:
    __slots__ = ("seq", "name", "blob", "result", "payload", "done", "doneq")

    def __init__(self, seq: int, name: str, blob: bytes):
        self.seq = seq
        self.name = name
        self.blob = blob
        self.result: Optional[int] = None
        self.payload: bytes = b""
        self.done = False
        self.doneq = WaitQueue("varan-done")


class RingLane:
    """Per-logical-thread event log with bounded run-ahead."""

    def __init__(self, capacity: int, replica_count: int):
        self.capacity = capacity
        self.events: deque = deque()
        self.master_seq = 0
        self.consumed: Dict[int, int] = {i: 0 for i in range(1, replica_count)}
        self.publishq = WaitQueue("varan-publish")
        self.spaceq = WaitQueue("varan-space")
        self.max_runahead = 0

    def runahead(self) -> int:
        floor = min(self.consumed.values()) if self.consumed else self.master_seq
        return self.master_seq - floor

    def full(self) -> bool:
        return self.runahead() >= self.capacity

    def event_for(self, replica_index: int) -> Optional[RingEvent]:
        seq = self.consumed[replica_index]
        base = self.master_seq - len(self.events)
        idx = seq - base
        if 0 <= idx < len(self.events):
            return self.events[idx]
        return None

    def trim(self) -> None:
        floor = min(self.consumed.values()) if self.consumed else self.master_seq
        base = self.master_seq - len(self.events)
        while self.events and base < floor:
            self.events.popleft()
            base += 1


class _AgentView:
    """Minimal view object satisfying the IpmonHandler interface."""

    def __init__(self, space, epoll_map, replica_index):
        self.space = space
        self.epoll_map = epoll_map
        self.replica_index = replica_index
        self.policy = None
        self.filemap = None


class Varan:
    """The IP-only MVEE supervising N replicas of one program."""

    def __init__(self, kernel, program, config: Optional[VaranConfig] = None):
        self.kernel = kernel
        self.program = program
        self.config = config or VaranConfig()
        self.result = MveeResult()
        self.layouts = make_layouts(
            self.config.replicas, seed=self.config.seed, aslr=True, dcl=False
        )
        self.processes: List = []
        self.lanes: Dict[int, RingLane] = {}
        self.epoll_map = EpollShadowMap(self.config.replicas)
        self.handlers = build_handler_table(SYSCALL_SPECS.keys())
        self.shutting_down = False
        self.master_exit_ns: Optional[int] = None
        self.stats = {
            "events": 0,
            "allexec": 0,
            "max_runahead": 0,
            "arg_mismatches": 0,
        }
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        kernel = self.kernel
        self.program.install_files(kernel)
        for layout in self.layouts:
            process = kernel.create_process(
                "%s.v%d" % (self.program.name, layout.index),
                mmap_base=layout.mmap_base,
                brk_base=layout.brk_base,
            )
            process.replica_index = layout.index
            process.varan = self
            pressure = kernel.config.costs.memory_pressure_per_replica
            process.compute_factor = 1.0 + pressure * (self.config.replicas - 1)
            self.processes.append(process)
        kernel.syscall_hooks.append(self)
        self._runtimes = [
            GuestRuntime(kernel, process, self.program, layout=layout)
            for process, layout in zip(self.processes, self.layouts)
        ]

    def lane(self, vtid: int) -> RingLane:
        lane = self.lanes.get(vtid)
        if lane is None:
            lane = RingLane(self.config.ring_entries, self.config.replicas)
            self.lanes[vtid] = lane
        return lane

    # ------------------------------------------------------------------
    # Kernel syscall hook
    # ------------------------------------------------------------------
    def intercept(self, thread, req):
        if getattr(thread.process, "varan", None) is not self:
            return None
        if getattr(req, "bypass_agents", False):
            # An unaligned syscall gadget: VARAN's binary rewriting never
            # saw this instruction, so the call goes straight through.
            return None
        index = thread.process.replica_index
        if index == 0:
            return self._master(thread, req)
        return self._slave(thread, req, index)

    def _master(self, thread, req):
        kernel = self.kernel
        costs = kernel.config.costs
        lane = self.lane(thread.vtid)
        yield Sleep(costs.ipmon_entry_ns, cpu=True)
        while lane.full():
            event = lane.spaceq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                lane.spaceq.unregister(event)
                return -4  # EINTR
        blob = serialize_args(req, thread.process.space).encode()
        ring_event = RingEvent(lane.master_seq, req.name, blob)
        lane.events.append(ring_event)
        lane.master_seq += 1
        lane.max_runahead = max(lane.max_runahead, lane.runahead())
        self.stats["max_runahead"] = max(self.stats["max_runahead"], lane.max_runahead)
        self.stats["events"] += 1
        yield Sleep(costs.rb_write_base_ns + costs.rb_copy_ns(len(blob)), cpu=True)
        handler = self.handlers.get(req.name)
        if handler is not None and hasattr(handler, "observe"):
            handler.observe(_AgentView(thread.process.space, self.epoll_map, 0), req)
        result = yield from kernel.invoke(thread, req)
        ring_event.result = result
        if req.name not in ALLEXEC_NAMES and handler is not None:
            view = _AgentView(thread.process.space, self.epoll_map, 0)
            ring_event.payload = handler.collect_results(view, req, result)
        ring_event.done = True
        ring_event.doneq.notify_all(kernel.sim)
        lane.publishq.notify_all(kernel.sim)
        return result

    def _slave(self, thread, req, index):
        kernel = self.kernel
        costs = kernel.config.costs
        lane = self.lane(thread.vtid)
        yield Sleep(costs.ipmon_entry_ns, cpu=True)
        # Find our next event (waiting for the master to get there).
        while True:
            ring_event = lane.event_for(index)
            if ring_event is not None:
                break
            event = lane.publishq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                lane.publishq.unregister(event)
                return -4
        # Consistency check (late — that is the point of the design).
        if ring_event.name != req.name:
            self.divergence(thread, req, "syscall sequence diverged: %s != %s"
                            % (req.name, ring_event.name))
            return -1
        if self.config.check_args:
            blob = serialize_args(req, thread.process.space).encode()
            yield Sleep(costs.compare_cost_ns(len(blob)), cpu=True)
            if blob != ring_event.blob:
                self.stats["arg_mismatches"] += 1
                self.divergence(thread, req, "argument mismatch on %s" % req.name)
                return -1
        if req.name in ALLEXEC_NAMES:
            self.stats["allexec"] += 1
            result = yield from kernel.invoke(thread, req)
            self._consume(lane, index)
            return result
        # Wait for the master's result.
        while not ring_event.done:
            event = ring_event.doneq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status == "interrupted":
                ring_event.doneq.unregister(event)
                return -4
        result = ring_event.result
        handler = self.handlers.get(req.name)
        if handler is not None:
            view = _AgentView(thread.process.space, self.epoll_map, index)
            if hasattr(handler, "observe"):
                handler.observe(view, req)
            handler.apply_results(view, req, result, ring_event.payload)
            yield Sleep(
                costs.rb_read_base_ns + costs.rb_copy_ns(len(ring_event.payload)),
                cpu=True,
            )
        if req.name in FD_CREATE_NAMES and isinstance(result, int) and result >= 0:
            self._install_shadow(thread.process, req, result)
        self._consume(lane, index)
        return result

    def _consume(self, lane: RingLane, index: int) -> None:
        lane.consumed[index] += 1
        lane.trim()
        lane.spaceq.notify_all(self.kernel.sim)

    def _install_shadow(self, process, req, result: int) -> None:
        from repro.core.ghumvee import _install_shadow_fd
        import struct as _struct

        if req.name in ("pipe", "pipe2"):
            try:
                raw = process.space.read(req.arg(0), 8, check_prot=False)
                rfd, wfd = _struct.unpack("<ii", raw)
            except Exception:  # noqa: BLE001 - shadow install is best effort
                return
            _install_shadow_fd(process, rfd, "pipe")
            _install_shadow_fd(process, wfd, "pipe")
            return
        _install_shadow_fd(process, result, "sock" if "socket" in req.name else "reg")

    # ------------------------------------------------------------------
    def divergence(self, thread, req, detail: str) -> None:
        if self.shutting_down:
            return
        self.result.divergence = DivergenceReport(
            self.kernel.sim.now, thread.vtid, req.name, detail, detected_by="varan"
        )
        self.shutdown("divergence: %s" % detail)

    def shutdown(self, reason: str) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        self.result.shutdown_reason = reason
        for process in self.processes:
            if not process.exited:
                self.kernel.terminate_process(process, 137, signo=9)

    # ------------------------------------------------------------------
    def run(self, until=None, max_steps=None) -> MveeResult:
        exit_times = {}
        for process in self.processes:
            process.exit_event.add_listener(
                lambda _v, p=process: exit_times.setdefault(
                    p.replica_index, self.kernel.sim.now
                )
            )
        for runtime in self._runtimes:
            runtime.start()
        self.kernel.sim.run(until=until, max_steps=max_steps)
        self.master_exit_ns = exit_times.get(0, self.kernel.sim.now)
        self.result.exit_codes = [p.exit_code for p in self.processes]
        self.result.wall_time_ns = self.master_exit_ns
        self.result.unmonitored_calls = self.stats["events"]
        self.result.stats = dict(self.stats)
        return self.result
